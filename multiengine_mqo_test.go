package turboflux

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"turboflux/internal/stream"
)

// mqoOverlapSpecs builds a query mix with deliberate overlap: a few base
// shapes, each registered two or three times with differing per-query
// semantics (and, for the triangle, an extra member whose closing
// non-tree edge label differs), so the spanning trees collapse into
// shared sub-patterns while the completion joins stay distinct.
func mqoOverlapSpecs(rng *rand.Rand) []parallelQuerySpec {
	var specs []parallelQuerySpec
	nBase := 2 + rng.Intn(2)
	for b := 0; b < nBase; b++ {
		base := parallelQuerySpec{
			shape:   rng.Intn(4),
			elabels: [3]Label{Label(rng.Intn(3)), Label(rng.Intn(3)), Label(rng.Intn(3))},
			vlabel:  Label(rng.Intn(2)),
		}
		copies := 2 + rng.Intn(2)
		for c := 0; c < copies; c++ {
			s := base
			if rng.Intn(2) == 1 {
				s.semantics = Isomorphism
			}
			specs = append(specs, s)
		}
		if base.shape == 2 {
			// A member that shares the spanning tree but not the closing
			// non-tree edge: the completion join, not the DCG, must tell
			// them apart.
			s := base
			s.elabels[2] = Label(rng.Intn(3))
			specs = append(specs, s)
		}
	}
	return specs
}

// runMQOStream runs the specs over ups with sub-pattern sharing on or
// off, all queries writing one interleaved transcript (registration
// order within an update is part of the compared bytes, exactly as in
// runBatchStream). With churn, the first and last queries are
// unregistered a third of the way in and re-registered (against the
// then-current graph) at two thirds, exercising refcount release,
// demotion, re-promotion and mid-stream shared-DCG adoption.
func runMQOStream(t *testing.T, sharing bool, workers, batchSize int, specs []parallelQuerySpec, ups []Update, churn bool) (string, map[string]int64, MQOStats) {
	t.Helper()
	m := NewMultiEngine(NewGraph())
	defer m.Close() //tf:unchecked-ok test teardown
	m.SetSharing(sharing)
	m.SetFanOutWorkers(workers)
	var b strings.Builder
	reg := func(i int) {
		name := fmt.Sprintf("q%d", i)
		q, opt := specs[i].build()
		opt.OnMatch = func(positive bool, mapping []VertexID) {
			sign := byte('+')
			if !positive {
				sign = '-'
			}
			fmt.Fprintf(&b, "%s%c%v;", name, sign, mapping)
		}
		if err := m.Register(name, q, opt); err != nil {
			t.Fatal(err)
		}
	}
	for i := range specs {
		reg(i)
	}
	totals := map[string]int64{}
	apply := func(seg []Update, off int) {
		for _, chunk := range stream.Batches(seg, batchSize) {
			base := off
			counts, err := m.ApplyBatchFunc(chunk, func(i int) {
				fmt.Fprintf(&b, "|%d;", base+i)
			})
			if err != nil {
				t.Fatal(err)
			}
			for name, n := range counts {
				totals[name] += n
			}
			off += len(chunk)
		}
	}
	if !churn {
		apply(ups, 0)
		return b.String(), totals, m.MQOStats()
	}
	cut1, cut2 := len(ups)/3, 2*len(ups)/3
	churned := []int{0, len(specs) - 1}
	apply(ups[:cut1], 0)
	for _, i := range churned {
		if !m.Unregister(fmt.Sprintf("q%d", i)) {
			t.Fatalf("q%d was not registered", i)
		}
	}
	apply(ups[cut1:cut2], cut1)
	for _, i := range churned {
		reg(i)
	}
	apply(ups[cut2:], cut2)
	return b.String(), totals, m.MQOStats()
}

// TestMQOEquivalence is the acceptance property of the shared-evaluation
// layer (DESIGN.md §17): for overlapping query mixes and random streams
// (including mid-stream vertex creation and no-op updates), shared
// sub-pattern evaluation emits byte-identical transcripts and counts to
// the private-DCG-per-query baseline, for every worker count and batch
// size.
func TestMQOEquivalence(t *testing.T) {
	nUpdates := 300
	if testing.Short() {
		nUpdates = 120
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			specs := mqoOverlapSpecs(rng)
			ups := randomBatchStream(rng, nUpdates)
			wantTr, wantTot, _ := runMQOStream(t, false, 1, 1, specs, ups, false)
			for _, workers := range []int{1, 4, 8} {
				for _, batch := range []int{1, 256} {
					gotTr, gotTot, st := runMQOStream(t, true, workers, batch, specs, ups, false)
					if st.SharedSubPatterns == 0 || st.MaintainRuns == 0 || st.SavedEvals == 0 {
						t.Fatalf("workers=%d batch=%d: sharing never engaged: %+v", workers, batch, st)
					}
					if gotTr != wantTr {
						t.Fatalf("workers=%d batch=%d: transcript diverged from private baseline %s",
							workers, batch, firstDiff(gotTr, wantTr))
					}
					for name, want := range wantTot {
						if got := gotTot[name]; got != want {
							t.Fatalf("workers=%d batch=%d query %s: counts %d != %d",
								workers, batch, name, got, want)
						}
					}
				}
			}
		})
	}
}

// TestMQOChurnEquivalence layers unregister/re-register churn over the
// delete-heavy churn stream: sub-patterns demote and re-promote
// mid-stream, re-registered members adopt the maintained shared DCG in
// place of a fresh build, and released slots recycle — all without the
// transcript drifting a byte from the private baseline.
func TestMQOChurnEquivalence(t *testing.T) {
	waves := 4
	if testing.Short() {
		waves = 2
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			specs := mqoOverlapSpecs(rng)
			ups := churnStream(rng, waves)
			wantTr, wantTot, _ := runMQOStream(t, false, 1, 1, specs, ups, true)
			for _, workers := range []int{1, 4, 8} {
				for _, batch := range []int{1, 256} {
					gotTr, gotTot, st := runMQOStream(t, true, workers, batch, specs, ups, true)
					if st.MaintainRuns == 0 {
						t.Fatalf("workers=%d batch=%d: sharing never engaged: %+v", workers, batch, st)
					}
					if gotTr != wantTr {
						t.Fatalf("workers=%d batch=%d: transcript diverged from private baseline %s",
							workers, batch, firstDiff(gotTr, wantTr))
					}
					for name, want := range wantTot {
						if got := gotTot[name]; got != want {
							t.Fatalf("workers=%d batch=%d query %s: counts %d != %d",
								workers, batch, name, got, want)
						}
					}
				}
			}
		})
	}
}

// TestMQORefcountLifecycle pins the registry bookkeeping end to end:
// acquire, promote at the second member, survive member loss, demote at
// one, re-promote on a fresh join, drop at zero — with every registered
// query still matching at each stage.
func TestMQORefcountLifecycle(t *testing.T) {
	m := NewMultiEngine(NewGraph())
	defer m.Close() //tf:unchecked-ok test teardown
	m.SetFanOutWorkers(1)
	spec := parallelQuerySpec{shape: 0} // 2-path, edge label 0, vertex label 0
	reg := func(name string) {
		q, opt := spec.build()
		if err := m.Register(name, q, opt); err != nil {
			t.Fatal(err)
		}
	}
	for v := VertexID(1); v <= 8; v++ {
		if _, err := m.Apply(DeclareVertex(v, 0)); err != nil {
			t.Fatal(err)
		}
	}

	check := func(stage string, subs, shared, refs int) {
		t.Helper()
		st := m.MQOStats()
		if st.SubPatterns != subs || st.SharedSubPatterns != shared || st.Refs != refs {
			t.Fatalf("%s: stats %+v, want subs=%d shared=%d refs=%d", stage, st, subs, shared, refs)
		}
	}

	reg("a")
	check("one member", 1, 0, 1)
	reg("b")
	check("promoted at two", 1, 1, 2)
	reg("c")
	check("third joins", 1, 1, 3)
	// Unshareable options stay fully private: no registry participation.
	q, opt := spec.build()
	opt.WorkBudget = 1 << 20
	if err := m.Register("d", q, opt); err != nil {
		t.Fatal(err)
	}
	check("private member", 1, 1, 3)

	counts, err := m.Insert(1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		if counts[name] != 1 {
			t.Fatalf("counts after shared insert = %v", counts)
		}
	}
	if st := m.MQOStats(); st.MaintainRuns == 0 || st.SavedEvals == 0 {
		t.Fatalf("maintenance never ran: %+v", st)
	}

	if !m.Unregister("b") {
		t.Fatal("b not registered")
	}
	check("member released", 1, 1, 2)
	if !m.Unregister("c") {
		t.Fatal("c not registered")
	}
	check("demoted at one", 1, 0, 1)
	counts, err = m.Insert(3, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if counts["a"] != 1 || counts["d"] != 1 || len(counts) != 2 {
		t.Fatalf("counts after demotion = %v", counts)
	}

	reg("c2")
	check("re-promoted", 1, 1, 2)
	counts, err = m.Insert(5, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if counts["a"] != 1 || counts["c2"] != 1 || counts["d"] != 1 {
		t.Fatalf("counts after re-promotion = %v", counts)
	}

	if !m.Unregister("a") || !m.Unregister("c2") {
		t.Fatal("unregister failed")
	}
	check("entry dropped at zero", 0, 0, 0)
	counts, err = m.Insert(7, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if counts["d"] != 1 || len(counts) != 1 {
		t.Fatalf("counts after full release = %v", counts)
	}
}

// TestMQORegisterChurnAllocs guards the incremental label index:
// registering and unregistering one query must cost the same number of
// allocations whether 4 or 64 other queries are registered. The old
// full-index rebuild allocated per registered query and would trip this.
func TestMQORegisterChurnAllocs(t *testing.T) {
	measure := func(n int) float64 {
		m := NewMultiEngine(NewGraph())
		defer m.Close() //tf:unchecked-ok test teardown
		m.SetFanOutWorkers(1)
		for i := 0; i < n; i++ {
			q := NewQuery(2)
			_ = q.AddEdge(0, Label(i%3), 1)
			if err := m.Register(fmt.Sprintf("q%d", i), q, Options{}); err != nil {
				t.Fatal(err)
			}
		}
		churn := func() {
			// A shape no resident query has, so each round walks the full
			// private register/unregister path.
			q := NewQuery(3)
			_ = q.AddEdge(0, 1, 1)
			_ = q.AddEdge(1, 2, 2)
			if err := m.Register("churn", q, Options{}); err != nil {
				t.Fatal(err)
			}
			if !m.Unregister("churn") {
				t.Fatal("churn not registered")
			}
		}
		churn() // prime index and map capacity
		return testing.AllocsPerRun(100, churn)
	}
	small, large := measure(4), measure(64)
	if large > small+8 {
		t.Fatalf("Register/Unregister churn scales with registry size: %.1f allocs at 4 queries, %.1f at 64", small, large)
	}
}
