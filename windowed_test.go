package turboflux

import (
	"math/rand"
	"testing"
)

func TestWindowedEviction(t *testing.T) {
	q := NewQuery(3)
	_ = q.AddEdge(0, 1, 1)
	_ = q.AddEdge(1, 1, 2)
	w, err := NewWindowedEngine(q, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two edges form the path 1->2->3.
	if pos, neg, err := w.Insert(1, 1, 2); err != nil || pos != 0 || neg != 0 {
		t.Fatalf("first: %d/%d %v", pos, neg, err)
	}
	pos, neg, err := w.Insert(2, 1, 3)
	if err != nil || pos != 1 || neg != 0 {
		t.Fatalf("second: %d/%d %v", pos, neg, err)
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	// Third edge evicts (1,1,2), destroying the match.
	pos, neg, err = w.Insert(9, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if neg != 1 {
		t.Fatalf("eviction negatives = %d, want 1", neg)
	}
	if w.Len() != 2 || w.Graph().HasEdge(1, 1, 2) {
		t.Fatal("oldest edge not evicted")
	}
	st := w.Stats()
	if st.PositiveMatches != 1 || st.NegativeMatches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if w.Window() != 2 {
		t.Fatal("Window accessor wrong")
	}
}

func TestWindowedDuplicateInsertAndExplicitDelete(t *testing.T) {
	q := NewQuery(2)
	_ = q.AddEdge(0, 1, 1)
	w, err := NewWindowedEngine(q, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Insert(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	// Duplicate: no-op, window unchanged.
	if pos, neg, err := w.Insert(1, 1, 2); err != nil || pos != 0 || neg != 0 {
		t.Fatalf("dup: %d/%d %v", pos, neg, err)
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d", w.Len())
	}
	// Explicit retraction.
	if n, err := w.Delete(1, 1, 2); err != nil || n != 1 {
		t.Fatalf("delete: %d %v", n, err)
	}
	if w.Len() != 0 {
		t.Fatal("Len after delete")
	}
	// Deleting again is a no-op.
	if n, err := w.Delete(1, 1, 2); err != nil || n != 0 {
		t.Fatalf("double delete: %d %v", n, err)
	}
	// The evictor must skip the tombstone of the explicit delete.
	for i := VertexID(0); i < 5; i++ {
		if _, _, err := w.Insert(10+i, 1, 20+i); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want window size 3", w.Len())
	}
}

func TestWindowedDeclareVertexAndErrors(t *testing.T) {
	q := NewQuery(2)
	q.SetLabels(1, 7)
	_ = q.AddEdge(0, 1, 1)
	if _, err := NewWindowedEngine(q, 0, Options{}); err == nil {
		t.Fatal("zero window must fail")
	}
	if _, err := NewWindowedEngine(NewQuery(0), 2, Options{}); err == nil {
		t.Fatal("invalid query must fail")
	}
	w, err := NewWindowedEngine(q, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DeclareVertex(5, 7); err != nil {
		t.Fatal(err)
	}
	pos, _, err := w.Insert(4, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 1 {
		t.Fatalf("labeled-vertex match = %d, want 1", pos)
	}
}

// TestWindowedInvariant: the window never holds more than its capacity
// and its graph always equals the set of live edges.
func TestWindowedInvariant(t *testing.T) {
	q := NewQuery(2)
	_ = q.AddEdge(0, 0, 1)
	const window = 16
	w, err := NewWindowedEngine(q, window, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		from := VertexID(rng.Intn(12))
		to := VertexID(rng.Intn(12))
		if rng.Intn(5) == 0 {
			if _, err := w.Delete(from, 0, to); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, _, err := w.Insert(from, 0, to); err != nil {
				t.Fatal(err)
			}
		}
		if w.Len() > window {
			t.Fatalf("step %d: window overflow %d", i, w.Len())
		}
		if w.Graph().NumEdges() != w.Len() {
			t.Fatalf("step %d: graph %d edges, live %d", i, w.Graph().NumEdges(), w.Len())
		}
	}
	// Every reported positive must eventually be retracted if we drain.
	for w.Len() > 0 {
		var e Edge
		found := false
		w.Graph().ForEachEdge(func(x Edge) {
			if !found {
				e, found = x, true
			}
		})
		if _, err := w.Delete(e.From, e.Label, e.To); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.PositiveMatches != st.NegativeMatches {
		t.Fatalf("drained window must balance: +%d -%d", st.PositiveMatches, st.NegativeMatches)
	}
}
