package turboflux

import (
	"fmt"
	"time"

	"turboflux/internal/durable"
)

// DurableMultiOptions configures OpenDurableMulti. The fields mirror
// DurableOptions minus the per-engine matching options: queries are
// registered dynamically with Register, each with its own Options.
type DurableMultiOptions struct {
	// Fsync is the WAL sync policy: "always", "interval" (default) or
	// "none"; see DurableOptions.
	Fsync string
	// FsyncInterval is the "interval" policy period (default 100ms).
	FsyncInterval time.Duration
	// SegmentSize rotates the log once the active segment reaches this
	// many bytes (default 4 MiB).
	SegmentSize int64
	// ReplayBatch sets how many WAL-tail records recovery applies per
	// batched pass (default 1024; 1 selects the record-at-a-time path).
	ReplayBatch int

	// VertexLabels / EdgeLabels, when non-nil, become the store's label
	// dictionaries, with recovered names merged in exactly as for
	// OpenDurable.
	VertexLabels, EdgeLabels *Dict

	// Bootstrap is an optional initial-graph history, journaled and
	// applied only when the store is fresh.
	Bootstrap []Update

	// FanOutWorkers sizes the multi-query fan-out worker pool (default
	// GOMAXPROCS; 1 selects the sequential path). See
	// MultiEngine.SetFanOutWorkers.
	FanOutWorkers int
}

// DurableMultiEngine is a MultiEngine whose update stream survives process
// crashes: every Apply/Insert/Delete is journaled to the write-ahead log
// before any registered query evaluates it. Query registrations themselves
// are not journaled — matches are recomputed from state, so after recovery
// the caller re-registers its standing queries (each Register rebuilds the
// query's DCG over the recovered graph) and matching resumes exactly where
// the surviving log prefix ends. This is the serving shape: the network
// server journals every accepted update before acking it, while clients
// own their query registrations.
//
// DurableMultiEngine is not safe for concurrent use, matching MultiEngine;
// the server serializes access through its engine-owner goroutine
// (machine-checked by turboflux-vet's actor-confinement analyzer).
//
//tf:actor-owned
type DurableMultiEngine struct {
	store *durable.Store
	m     *MultiEngine
	rec   RecoveryInfo
}

// OpenDurableMulti opens (or creates) the durable store in dir, recovers
// the data graph from its newest valid snapshot plus the journaled tail,
// and wraps it in an empty MultiEngine ready for Register calls.
func OpenDurableMulti(dir string, opt DurableMultiOptions) (*DurableMultiEngine, error) {
	pol, err := durable.ParsePolicy(opt.Fsync)
	if err != nil {
		return nil, err
	}
	st, err := durable.Open(dir, durable.Options{
		Fsync:        pol,
		FsyncEvery:   opt.FsyncInterval,
		SegmentSize:  opt.SegmentSize,
		ReplayBatch:  opt.ReplayBatch,
		VertexLabels: opt.VertexLabels,
		EdgeLabels:   opt.EdgeLabels,
	})
	if err != nil {
		return nil, err
	}
	vd, err := adoptDict(opt.VertexLabels, st.VertexLabels(), "vertex")
	if err != nil {
		st.Close() //tf:unchecked-ok already failing
		return nil, err
	}
	ed, err := adoptDict(opt.EdgeLabels, st.EdgeLabels(), "edge")
	if err != nil {
		st.Close() //tf:unchecked-ok already failing
		return nil, err
	}
	st.SetDicts(vd, ed)

	if st.Recovery().Fresh {
		for _, u := range opt.Bootstrap {
			if _, err := st.Append(u); err != nil {
				st.Close() //tf:unchecked-ok already failing
				return nil, err
			}
			u.Apply(st.Graph())
		}
	}

	m := NewMultiEngine(st.Graph())
	m.SetFanOutWorkers(opt.FanOutWorkers)

	rec := st.Recovery()
	return &DurableMultiEngine{
		store: st,
		m:     m,
		rec: RecoveryInfo{
			SnapshotLSN:    rec.SnapshotLSN,
			Replayed:       rec.Replayed,
			TruncatedBytes: rec.TruncatedBytes,
			Fresh:          rec.Fresh,
		},
	}, nil
}

// Recovery returns what OpenDurableMulti found on disk.
func (d *DurableMultiEngine) Recovery() RecoveryInfo { return d.rec }

// Register adds a continuous query under the given name, building its DCG
// over the current (recovered) graph state. Registrations are not
// journaled; re-register after reopening the store.
func (d *DurableMultiEngine) Register(name string, q *Query, opt Options) error {
	return d.m.Register(name, q, opt)
}

// Unregister removes a query and reports whether it was registered.
func (d *DurableMultiEngine) Unregister(name string) bool { return d.m.Unregister(name) }

// Queries returns the registered query names in registration order.
func (d *DurableMultiEngine) Queries() []string { return d.m.Queries() }

// InitialMatches reports each registered query's matches over the current
// graph and returns per-query counts.
func (d *DurableMultiEngine) InitialMatches() map[string]int64 { return d.m.InitialMatches() }

// Insert journals an edge insertion and then fans it out to every
// registered query, returning per-query positive-match counts.
func (d *DurableMultiEngine) Insert(from VertexID, l Label, to VertexID) (map[string]int64, error) {
	if _, err := d.store.Append(Insert(from, l, to)); err != nil {
		return nil, err
	}
	return d.m.Insert(from, l, to)
}

// Delete journals an edge deletion and then fans it out, returning
// per-query negative-match counts.
func (d *DurableMultiEngine) Delete(from VertexID, l Label, to VertexID) (map[string]int64, error) {
	if _, err := d.store.Append(Delete(from, l, to)); err != nil {
		return nil, err
	}
	return d.m.Delete(from, l, to)
}

// Apply journals one stream update and then fans it out.
func (d *DurableMultiEngine) Apply(u Update) (map[string]int64, error) {
	if _, err := d.store.Append(u); err != nil {
		return nil, err
	}
	return d.m.Apply(u)
}

// ApplyBatch journals the whole batch as one log write, then evaluates it
// through the batched fan-out pipeline (MultiEngine.ApplyBatch). A
// journaling failure aborts before any update is applied.
func (d *DurableMultiEngine) ApplyBatch(ups []Update) (map[string]int64, error) {
	return d.ApplyBatchFunc(ups, nil)
}

// ApplyBatchFunc is ApplyBatch with MultiEngine.ApplyBatchFunc's
// per-update boundary hook.
func (d *DurableMultiEngine) ApplyBatchFunc(ups []Update, boundary func(i int)) (map[string]int64, error) {
	if _, _, err := d.store.AppendBatch(ups); err != nil {
		return nil, err
	}
	return d.m.ApplyBatchFunc(ups, boundary)
}

// Compact writes a fresh snapshot covering the whole journaled history and
// drops the log segments it makes obsolete.
func (d *DurableMultiEngine) Compact() error { return d.store.Compact() }

// Sync forces journaled updates to stable storage regardless of the fsync
// policy.
func (d *DurableMultiEngine) Sync() error { return d.store.Sync() }

// Close releases the fan-out worker pool, then syncs and closes the
// journal. The engine is unusable afterwards; reopen the directory with
// OpenDurableMulti to resume.
func (d *DurableMultiEngine) Close() error {
	d.m.Close() //tf:unchecked-ok pool release never fails
	return d.store.Close()
}

// LSN returns the log position of the last journaled update.
func (d *DurableMultiEngine) LSN() uint64 { return d.store.LSN() }

// Store exposes the underlying durable store for replication plumbing
// (append taps, catch-up plans, snapshot access). Callers must respect
// the engine's single-threaded discipline.
func (d *DurableMultiEngine) Store() *durable.Store { return d.store }

// Reseed adopts a leader snapshot as this engine's entire state: the
// store re-points to the snapshot's graph and dictionaries (persisting
// the snapshot so restarts recover from it) and the MultiEngine is
// rebuilt over the new graph. Only a fresh engine may be reseeded — the
// store must hold no journaled history and no query may be registered,
// since registrations would silently lose their DCGs in the swap.
func (d *DurableMultiEngine) Reseed(data []byte) error {
	if n := len(d.m.Queries()); n > 0 {
		return fmt.Errorf("turboflux: cannot reseed with %d registered queries; register queries after seeding", n)
	}
	if err := d.store.SeedFromSnapshot(data); err != nil {
		return err
	}
	workers := d.m.FanOutWorkers()
	d.m.Close() //tf:unchecked-ok pool release never fails
	m := NewMultiEngine(d.store.Graph())
	m.SetFanOutWorkers(workers)
	d.m = m
	return nil
}

// Graph returns the shared data graph. Treat it as read-only.
func (d *DurableMultiEngine) Graph() *Graph { return d.m.Graph() }

// VertexLabels returns the live vertex-label dictionary.
func (d *DurableMultiEngine) VertexLabels() *Dict { return d.store.VertexLabels() }

// EdgeLabels returns the live edge-label dictionary.
func (d *DurableMultiEngine) EdgeLabels() *Dict { return d.store.EdgeLabels() }

// Stats returns a per-query snapshot of engine counters, keyed by name.
func (d *DurableMultiEngine) Stats() map[string]Stats { return d.m.Stats() }

// FanOutStats snapshots the fan-out counters.
func (d *DurableMultiEngine) FanOutStats() FanOutStats { return d.m.FanOutStats() }

// MQOStats snapshots the sub-pattern sharing counters.
func (d *DurableMultiEngine) MQOStats() MQOStats { return d.m.MQOStats() }
