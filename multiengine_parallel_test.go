package turboflux

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// parallelQuerySpec deterministically describes one random query so each
// worker configuration can rebuild an identical fresh Query.
type parallelQuerySpec struct {
	shape     int // 0: 2-path, 1: 3-path, 2: triangle, 3: star
	elabels   [3]Label
	vlabel    Label
	semantics Semantics
}

func (s parallelQuerySpec) build() (*Query, Options) {
	var q *Query
	switch s.shape {
	case 0:
		q = NewQuery(2)
		_ = q.AddEdge(0, s.elabels[0], 1)
	case 1:
		q = NewQuery(3)
		_ = q.AddEdge(0, s.elabels[0], 1)
		_ = q.AddEdge(1, s.elabels[1], 2)
	case 2:
		q = NewQuery(3)
		_ = q.AddEdge(0, s.elabels[0], 1)
		_ = q.AddEdge(1, s.elabels[1], 2)
		_ = q.AddEdge(2, s.elabels[2], 0)
	default:
		q = NewQuery(4)
		_ = q.AddEdge(0, s.elabels[0], 1)
		_ = q.AddEdge(0, s.elabels[1], 2)
		_ = q.AddEdge(0, s.elabels[2], 3)
	}
	for v := VertexID(0); v < VertexID(q.NumVertices()); v++ {
		q.SetLabels(v, s.vlabel)
	}
	return q, Options{Semantics: s.semantics}
}

func randomQuerySpecs(rng *rand.Rand) []parallelQuerySpec {
	n := 2 + rng.Intn(7) // 2..8 queries
	specs := make([]parallelQuerySpec, n)
	for i := range specs {
		specs[i] = parallelQuerySpec{
			shape:   rng.Intn(4),
			elabels: [3]Label{Label(rng.Intn(3)), Label(rng.Intn(3)), Label(rng.Intn(3))},
			vlabel:  Label(rng.Intn(2)),
		}
		if rng.Intn(2) == 1 {
			specs[i].semantics = Isomorphism
		}
	}
	return specs
}

// randomStream builds one update slice: vertex declarations up front
// (labels 0/1 by parity), then insert-heavy edge churn over 3 edge
// labels with deletions of previously inserted edges.
func randomStream(rng *rand.Rand, nUpdates int) []Update {
	const nVerts = 30
	var ups []Update
	for v := VertexID(1); v <= nVerts; v++ {
		ups = append(ups, DeclareVertex(v, Label(v%2)))
	}
	type edge struct {
		from, to VertexID
		l        Label
	}
	var inserted []edge
	for len(ups) < nUpdates {
		switch r := rng.Float64(); {
		case r < 0.72 || len(inserted) == 0:
			e := edge{
				from: VertexID(1 + rng.Intn(nVerts)),
				to:   VertexID(1 + rng.Intn(nVerts)),
				l:    Label(rng.Intn(3)),
			}
			inserted = append(inserted, e)
			ups = append(ups, Insert(e.from, e.l, e.to))
		default:
			e := inserted[rng.Intn(len(inserted))]
			ups = append(ups, Delete(e.from, e.l, e.to))
		}
	}
	return ups
}

// runParallelStream registers the specs' queries on a fresh graph with
// the given worker count, applies the stream, and returns the per-query
// emission transcript (sign + mapping per match, in delivery order) and
// the summed per-query counts.
func runParallelStream(t *testing.T, workers int, specs []parallelQuerySpec, ups []Update) (map[string]string, map[string]int64) {
	t.Helper()
	m := NewMultiEngine(NewGraph())
	defer m.Close() //tf:unchecked-ok test teardown
	m.SetFanOutWorkers(workers)
	if got := m.FanOutWorkers(); got != workers && workers > 0 {
		t.Fatalf("FanOutWorkers = %d, want %d", got, workers)
	}
	transcripts := map[string]*strings.Builder{}
	for i, s := range specs {
		name := fmt.Sprintf("q%d", i)
		b := &strings.Builder{}
		transcripts[name] = b
		q, opt := s.build()
		opt.OnMatch = func(positive bool, mapping []VertexID) {
			sign := byte('+')
			if !positive {
				sign = '-'
			}
			b.WriteByte(sign)
			fmt.Fprintf(b, "%v;", mapping)
		}
		if err := m.Register(name, q, opt); err != nil {
			t.Fatal(err)
		}
	}
	totals := map[string]int64{}
	for _, u := range ups {
		counts, err := m.Apply(u)
		if err != nil {
			t.Fatal(err)
		}
		for name, n := range counts {
			totals[name] += n
		}
	}
	out := map[string]string{}
	for name, b := range transcripts {
		out[name] = b.String()
	}
	return out, totals
}

// TestParallelFanOutEquivalence is the tentpole property: for random
// streams and random query mixes, every worker-pool configuration
// produces byte-identical per-query transcripts and counts to the
// sequential path.
func TestParallelFanOutEquivalence(t *testing.T) {
	nUpdates := 400
	if testing.Short() {
		nUpdates = 150
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			specs := randomQuerySpecs(rng)
			ups := randomStream(rng, nUpdates)
			wantTr, wantTot := runParallelStream(t, 1, specs, ups)
			for _, workers := range []int{2, 4, 8} {
				gotTr, gotTot := runParallelStream(t, workers, specs, ups)
				for name, want := range wantTr {
					if got := gotTr[name]; got != want {
						t.Fatalf("workers=%d query %s: transcript diverged\nsequential: %s\nparallel:   %s",
							workers, name, want, got)
					}
				}
				for name, want := range wantTot {
					if got := gotTot[name]; got != want {
						t.Fatalf("workers=%d query %s: counts %d != sequential %d",
							workers, name, got, want)
					}
				}
			}
		})
	}
}

// TestParallelFanOutStats checks the counters the serving STATS line
// surfaces: evaluations run, evaluations skipped by label routing, and
// pool batches.
func TestParallelFanOutStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specs := []parallelQuerySpec{
		// Two distinct tree shapes watching label 0: identical shapes would
		// collapse into one shared sub-pattern and ride a single pool task.
		{shape: 0, elabels: [3]Label{0, 0, 0}}, // watches label 0
		{shape: 1, elabels: [3]Label{0, 0, 0}}, // watches label 0
		{shape: 0, elabels: [3]Label{2, 2, 2}}, // watches label 2
	}
	ups := randomStream(rng, 200)
	m := NewMultiEngine(NewGraph())
	defer m.Close() //tf:unchecked-ok test teardown
	m.SetFanOutWorkers(4)
	for i, s := range specs {
		q, opt := s.build()
		if err := m.Register(fmt.Sprintf("q%d", i), q, opt); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range ups {
		if _, err := m.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	fs := m.FanOutStats()
	if fs.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", fs.Workers)
	}
	if fs.Evals == 0 {
		t.Fatal("Evals = 0: nothing evaluated")
	}
	if fs.Skipped == 0 {
		t.Fatal("Skipped = 0: label routing never engaged on a disjoint-label mix")
	}
	// Label-0 updates have two relevant engines, so the pool must have
	// run real barriers.
	if fs.Batches == 0 || fs.Pooled == 0 {
		t.Fatalf("pool idle: batches=%d pooled=%d", fs.Batches, fs.Pooled)
	}
	if len(fs.PerWorker) != 4 {
		t.Fatalf("PerWorker = %v, want 4 entries", fs.PerWorker)
	}
}

// TestMultiEngineFanOutErrorEvaluatesAll pins the failure semantics: a
// budget-starved query mid-fan-out must not stop later engines from
// evaluating, the aggregated error wraps ErrWorkBudget, and a Delete
// still removes the edge so the graph tracks the stream.
func TestMultiEngineFanOutErrorEvaluatesAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			g := NewGraph()
			g.EnsureVertex(1, 0)
			g.EnsureVertex(2, 0)
			m := NewMultiEngine(g)
			defer m.Close() //tf:unchecked-ok test teardown
			m.SetFanOutWorkers(workers)
			mkQ := func() *Query {
				q := NewQuery(2)
				q.SetLabels(0, 0)
				q.SetLabels(1, 0)
				_ = q.AddEdge(0, 0, 1)
				return q
			}
			if err := m.Register("before", mkQ(), Options{}); err != nil {
				t.Fatal(err)
			}
			// Budget 2 is enough to register against the small graph but
			// not to evaluate the triggering insertion.
			if err := m.Register("starved", mkQ(), Options{WorkBudget: 2}); err != nil {
				t.Fatal(err)
			}
			if err := m.Register("after", mkQ(), Options{}); err != nil {
				t.Fatal(err)
			}

			counts, err := m.Insert(1, 0, 2)
			if err == nil {
				t.Fatal("starved query must surface its error")
			}
			if !errors.Is(err, ErrWorkBudget) {
				t.Fatalf("err = %v, want ErrWorkBudget", err)
			}
			if !strings.Contains(err.Error(), `"starved"`) {
				t.Fatalf("err = %v, want the failing query's name", err)
			}
			// The queries registered before AND after the starved one both
			// completed: no silent DCG desync past the failure point.
			if counts["before"] != 1 || counts["after"] != 1 {
				t.Fatalf("counts = %v; engines after the failure were not evaluated", counts)
			}

			// Delete still removes the edge despite the starved engine
			// failing again, so the shared graph keeps tracking the stream.
			if _, err := m.Delete(1, 0, 2); err == nil {
				t.Fatal("starved query must also fail the delete fan-out")
			}
			if m.Graph().HasEdge(1, 0, 2) {
				t.Fatal("edge still present after Delete: graph diverged from the stream")
			}
			// Healthy engines stay in sync: re-inserting reports fresh
			// matches on both.
			counts, _ = m.Insert(1, 0, 2)
			if counts["before"] != 1 || counts["after"] != 1 {
				t.Fatalf("counts after recovery = %v", counts)
			}
		})
	}
}

// TestParallelFanOutNewVertexRouting pins the label-routing soundness
// condition: an insert that creates brand-new endpoint vertices must
// still register them as root candidates in engines the update's label
// was routed away from.
func TestParallelFanOutNewVertexRouting(t *testing.T) {
	m := NewMultiEngine(NewGraph())
	defer m.Close() //tf:unchecked-ok test teardown
	m.SetFanOutWorkers(4)
	// Two queries on disjoint labels; unlabeled query vertices so the
	// auto-created (unlabeled) endpoints are candidates.
	q0 := NewQuery(2)
	_ = q0.AddEdge(0, 0, 1)
	q1 := NewQuery(2)
	_ = q1.AddEdge(0, 1, 1)
	if err := m.Register("l0", q0, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("l1", q1, Options{}); err != nil {
		t.Fatal(err)
	}
	// This insert creates vertices 1 and 2 and is routed only to l0; l1
	// must still learn about the new vertices.
	if _, err := m.Insert(1, 0, 2); err != nil {
		t.Fatal(err)
	}
	// If l1 missed the root-candidate bookkeeping, this label-1 edge
	// between the auto-created vertices reports no match.
	counts, err := m.Insert(1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if counts["l1"] != 1 {
		t.Fatalf("counts = %v; skipped engine missed the new vertices", counts)
	}
}
