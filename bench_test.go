// Benchmarks mirroring every table and figure of the paper's evaluation
// (DESIGN.md §5 maps each BenchmarkFigN to its paper artifact). These are
// the testing.B counterparts of cmd/turboflux-bench: scaled down further
// so the whole suite runs in minutes on one core, while preserving the
// comparative shape (who wins, how gaps grow). The full sweeps — all
// rates, scatter plots, larger scale — live in the harness CLI.
package turboflux_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"turboflux/internal/harness"
	"turboflux/internal/query"
	"turboflux/internal/stats"
	"turboflux/internal/workload"
)

const (
	benchUsers     = 250
	benchQueries   = 2
	benchTimeout   = 2 * time.Second
	benchSizeCap   = 1 << 26
	benchWork      = 2_000_000
	benchSeed      = 1
	benchNFHosts   = 800
	benchNFTriples = 12000
)

var (
	benchMu    sync.Mutex
	benchLSDS  *workload.Dataset
	benchNFDS  *workload.Dataset
	benchQSets = map[string][]*query.Graph{}
)

func benchRC() harness.RunConfig {
	return harness.RunConfig{
		Timeout: benchTimeout,
		SizeCap: benchSizeCap,
		Engine:  harness.EngineOptions{WorkBudget: benchWork, TupleCap: benchSizeCap / 32},
	}
}

func lsDataset() *workload.Dataset {
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchLSDS == nil {
		benchLSDS = workload.LSBench(workload.LSBenchConfig{
			Users: benchUsers, StreamFraction: 0.1, Seed: benchSeed,
		})
	}
	return benchLSDS
}

func nfDataset() *workload.Dataset {
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchNFDS == nil {
		benchNFDS = workload.Netflow(workload.NetflowConfig{
			Hosts: benchNFHosts, Triples: benchNFTriples, StreamFraction: 0.1, Seed: benchSeed,
		})
	}
	return benchNFDS
}

// querySet caches a filtered query set per (dataset, shape, size).
func querySet(ds *workload.Dataset, shape string, size int, seed int64) []*query.Graph {
	key := fmt.Sprintf("%s/%s/%d/%d", ds.Name, shape, size, seed)
	benchMu.Lock()
	qs, ok := benchQSets[key]
	benchMu.Unlock()
	if ok {
		return qs
	}
	var cands []*query.Graph
	switch shape {
	case "tree":
		cands = ds.TreeQueries(benchQueries*3, size, seed)
	case "cyclic":
		cands = ds.CyclicQueries(benchQueries*3, size, seed)
	case "path":
		cands = ds.PathQueries(benchQueries*3, size, seed)
	case "btree":
		cands = ds.BinaryTreeQueries(benchQueries*3, size, seed)
	}
	// Keep queries that produce matches and finish under the budget.
	rc := benchRC()
	for _, q := range cands {
		r := harness.RunQuery(harness.TurboFlux, ds, q, rc)
		if !r.TimedOut && r.Matches > 0 {
			qs = append(qs, q)
		}
		if len(qs) == benchQueries {
			break
		}
	}
	if len(qs) == 0 && len(cands) > 0 {
		qs = cands[:1] // fall back so censored rows still measure censoring
	}
	benchMu.Lock()
	benchQSets[key] = qs
	benchMu.Unlock()
	return qs
}

// replayBench measures one engine replaying the stream over a query set.
func replayBench(b *testing.B, kind harness.Kind, ds *workload.Dataset, qs []*query.Graph, rc harness.RunConfig) {
	b.Helper()
	if len(qs) == 0 {
		b.Skip("no usable queries generated")
	}
	var matches, timeouts int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			r := harness.RunQuery(kind, ds, q, rc)
			matches += r.Matches
			if r.TimedOut {
				timeouts++
			}
		}
	}
	b.ReportMetric(float64(matches)/float64(b.N), "matches/op")
	b.ReportMetric(float64(timeouts)/float64(b.N), "timeouts/op")
}

var benchEngines = []harness.Kind{harness.TurboFlux, harness.SJTree, harness.Graphflow}

// BenchmarkFig3Tradeoff: Figure 3 — cost/storage trade-off on tree-q6.
func BenchmarkFig3Tradeoff(b *testing.B) {
	ds := lsDataset()
	qs := querySet(ds, "tree", 6, benchSeed+60)
	for _, k := range benchEngines {
		b.Run(k.String(), func(b *testing.B) {
			replayBench(b, k, ds, qs, benchRC())
		})
	}
}

// BenchmarkFig6TreeQueries: Figure 6 — LSBench tree queries by size.
func BenchmarkFig6TreeQueries(b *testing.B) {
	ds := lsDataset()
	for _, size := range []int{3, 6, 9, 12} {
		qs := querySet(ds, "tree", size, benchSeed+int64(size))
		for _, k := range benchEngines {
			b.Run(fmt.Sprintf("size=%d/%s", size, k), func(b *testing.B) {
				replayBench(b, k, ds, qs, benchRC())
			})
		}
	}
}

// BenchmarkFig7GraphQueries: Figure 7 — LSBench cyclic queries by size.
func BenchmarkFig7GraphQueries(b *testing.B) {
	ds := lsDataset()
	for _, size := range []int{6, 9, 12} {
		qs := querySet(ds, "cyclic", size, benchSeed+100+int64(size))
		for _, k := range benchEngines {
			b.Run(fmt.Sprintf("size=%d/%s", size, k), func(b *testing.B) {
				replayBench(b, k, ds, qs, benchRC())
			})
		}
	}
}

// BenchmarkFig8InsertionRate: Figure 8 — cost as the stream share grows.
func BenchmarkFig8InsertionRate(b *testing.B) {
	for _, rate := range []int{2, 6, 10} {
		ds := workload.LSBench(workload.LSBenchConfig{
			Users: benchUsers, StreamFraction: float64(rate) / 100, Seed: benchSeed,
		})
		qs := querySet(ds, "tree", 6, benchSeed+200)
		for _, k := range benchEngines {
			b.Run(fmt.Sprintf("rate=%d%%/%s", rate, k), func(b *testing.B) {
				replayBench(b, k, ds, qs, benchRC())
			})
		}
	}
}

// BenchmarkFig9DatasetSize: Figure 9 — fixed stream, growing initial
// graph. Graphflow degrades with |g0| while TurboFlux and SJ-Tree stay
// flat (they maintain intermediate results).
func BenchmarkFig9DatasetSize(b *testing.B) {
	streamLen := -1
	for _, mult := range []int{1, 4} {
		ds := workload.LSBench(workload.LSBenchConfig{
			Users: benchUsers * mult, StreamFraction: 0.1, Seed: benchSeed,
		})
		if streamLen < 0 {
			streamLen = len(ds.Stream)
		}
		rc := benchRC()
		if len(ds.Stream) > streamLen {
			rc.Stream = ds.Stream[:streamLen]
		}
		qs := querySet(ds, "tree", 6, benchSeed+300)
		for _, k := range benchEngines {
			b.Run(fmt.Sprintf("scale=%dx/%s", mult, k), func(b *testing.B) {
				replayBench(b, k, ds, qs, rc)
			})
		}
	}
}

// BenchmarkFig10Isomorphism: Figure 10 — subgraph isomorphism semantics.
func BenchmarkFig10Isomorphism(b *testing.B) {
	ds := lsDataset()
	rc := benchRC()
	rc.Engine.Injective = true
	for _, set := range []struct {
		name string
		qs   []*query.Graph
	}{
		{"tree6", querySet(ds, "tree", 6, benchSeed+400)},
		{"graph6", querySet(ds, "cyclic", 6, benchSeed+410)},
	} {
		for _, k := range benchEngines {
			b.Run(fmt.Sprintf("%s/%s", set.name, k), func(b *testing.B) {
				replayBench(b, k, ds, set.qs, rc)
			})
		}
	}
}

// BenchmarkFig11DeletionRate: Figure 11 — deletions in the stream.
// SJ-Tree is excluded (no deletion support).
func BenchmarkFig11DeletionRate(b *testing.B) {
	for _, rate := range []int{2, 10} {
		ds := workload.LSBench(workload.LSBenchConfig{
			Users: benchUsers, StreamFraction: 0.06,
			DeletionRate: float64(rate) / 100, Seed: benchSeed,
		})
		qs := querySet(ds, "tree", 6, benchSeed+500)
		for _, k := range []harness.Kind{harness.TurboFlux, harness.Graphflow} {
			b.Run(fmt.Sprintf("rate=%d%%/%s", rate, k), func(b *testing.B) {
				replayBench(b, k, ds, qs, benchRC())
			})
		}
	}
}

// BenchmarkFig12IncIsoMat: Figure 12 — repeated-search baseline on a short
// insert stream.
func BenchmarkFig12IncIsoMat(b *testing.B) {
	ds := lsDataset()
	qs := querySet(ds, "tree", 6, benchSeed+600)
	rc := benchRC()
	if len(ds.Stream) > 100 {
		rc.Stream = ds.Stream[:100]
	}
	for _, k := range []harness.Kind{harness.TurboFlux, harness.IncIsoMat} {
		b.Run(k.String(), func(b *testing.B) {
			replayBench(b, k, ds, qs, rc)
		})
	}
}

// BenchmarkFig13NetflowTree: Figure 13 — label-poor Netflow tree queries.
func BenchmarkFig13NetflowTree(b *testing.B) {
	ds := nfDataset()
	for _, size := range []int{3, 6} {
		qs := querySet(ds, "tree", size, benchSeed+700+int64(size))
		for _, k := range benchEngines {
			b.Run(fmt.Sprintf("size=%d/%s", size, k), func(b *testing.B) {
				replayBench(b, k, ds, qs, benchRC())
			})
		}
	}
}

// BenchmarkFig14NetflowGraph: Figure 14 — Netflow cyclic queries.
func BenchmarkFig14NetflowGraph(b *testing.B) {
	ds := nfDataset()
	qs := querySet(ds, "cyclic", 6, benchSeed+806)
	for _, k := range benchEngines {
		b.Run(k.String(), func(b *testing.B) {
			replayBench(b, k, ds, qs, benchRC())
		})
	}
}

// BenchmarkFig15NetflowPath: Figure 15 — path queries of [7].
func BenchmarkFig15NetflowPath(b *testing.B) {
	ds := nfDataset()
	for _, size := range []int{3, 5} {
		qs := querySet(ds, "path", size, benchSeed+900+int64(size))
		for _, k := range benchEngines {
			b.Run(fmt.Sprintf("size=%d/%s", size, k), func(b *testing.B) {
				replayBench(b, k, ds, qs, benchRC())
			})
		}
	}
}

// BenchmarkFig16NetflowBTree: Figure 16 — binary-tree queries of [7].
func BenchmarkFig16NetflowBTree(b *testing.B) {
	ds := nfDataset()
	for _, size := range []int{4, 8} {
		qs := querySet(ds, "btree", size, benchSeed+950+int64(size))
		for _, k := range benchEngines {
			b.Run(fmt.Sprintf("size=%d/%s", size, k), func(b *testing.B) {
				replayBench(b, k, ds, qs, benchRC())
			})
		}
	}
}

// BenchmarkFig17Selectivity: Figure 17 — the selectivity histogram is a
// by-product of TurboFlux replays; this benchmarks the measurement pass.
func BenchmarkFig17Selectivity(b *testing.B) {
	ds := lsDataset()
	qs := querySet(ds, "tree", 6, benchSeed+60)
	if len(qs) == 0 {
		b.Skip("no usable queries")
	}
	rc := benchRC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := stats.NewSelectivityHistogram()
		for _, q := range qs {
			r := harness.RunQuery(harness.TurboFlux, ds, q, rc)
			if !r.TimedOut {
				h.Observe(r.Matches)
			}
		}
		if h.Total() == 0 {
			b.Fatal("histogram empty")
		}
	}
}

// BenchmarkNECCompression: Appendix B.5 — SJ-Tree on NEC-compressed
// queries vs originals.
func BenchmarkNECCompression(b *testing.B) {
	ds := lsDataset()
	qs := querySet(ds, "tree", 6, benchSeed+60)
	var orig, comp []*query.Graph
	for _, q := range qs {
		if cq, ok := query.NECCompress(q); ok {
			orig = append(orig, q)
			comp = append(comp, cq)
		}
	}
	if len(orig) == 0 {
		b.Skip("no NEC-compressible queries in the set")
	}
	b.Run("original", func(b *testing.B) {
		replayBench(b, harness.SJTree, ds, orig, benchRC())
	})
	b.Run("compressed", func(b *testing.B) {
		replayBench(b, harness.SJTree, ds, comp, benchRC())
	})
}

// BenchmarkAblationCheckAndAvoid: DESIGN.md abl1 — the check-and-avoid
// strategy (Section 3.1) vs re-traversing already-built DCG subtrees.
func BenchmarkAblationCheckAndAvoid(b *testing.B) {
	ds := lsDataset()
	qs := querySet(ds, "tree", 6, benchSeed+60)
	for _, disabled := range []bool{false, true} {
		name := "on"
		if disabled {
			name = "off"
		}
		rc := benchRC()
		rc.Engine.DisableCheckAndAvoid = disabled
		b.Run(name, func(b *testing.B) {
			replayBench(b, harness.TurboFlux, ds, qs, rc)
		})
	}
}

// BenchmarkAblationMatchingOrder: DESIGN.md abl2 — AdjustMatchingOrder on
// vs a frozen startup order.
func BenchmarkAblationMatchingOrder(b *testing.B) {
	ds := lsDataset()
	qs := querySet(ds, "tree", 9, benchSeed+10)
	for _, disabled := range []bool{false, true} {
		name := "adaptive"
		if disabled {
			name = "frozen"
		}
		rc := benchRC()
		rc.Engine.DisableOrderAdjust = disabled
		b.Run(name, func(b *testing.B) {
			replayBench(b, harness.TurboFlux, ds, qs, rc)
		})
	}
}

// BenchmarkAblationNaiveEL: DESIGN.md abl3 — selective transitions vs
// recomputing the edge-transition fixpoint from scratch per update
// (Algorithm 1 as written). Run on a reduced stream: the naive mode is
// orders of magnitude slower.
func BenchmarkAblationNaiveEL(b *testing.B) {
	ds := workload.LSBench(workload.LSBenchConfig{
		Users: 60, StreamFraction: 0.1, Seed: benchSeed,
	})
	qs := querySet(ds, "tree", 6, benchSeed+77)
	rc := benchRC()
	if len(ds.Stream) > 100 {
		rc.Stream = ds.Stream[:100]
	}
	for _, naiveEL := range []bool{false, true} {
		name := "selective"
		if naiveEL {
			name = "naive-EL"
		}
		r := rc
		r.Engine.NaiveEL = naiveEL
		b.Run(name, func(b *testing.B) {
			replayBench(b, harness.TurboFlux, ds, qs, r)
		})
	}
}

// BenchmarkAblationSearchStrategy: Backtracking (Algorithm 7) vs the
// worst-case-optimal join over the DCG (Section 4.3 sketch) on cyclic
// queries, where candidate intersection matters most.
func BenchmarkAblationSearchStrategy(b *testing.B) {
	ds := lsDataset()
	qs := querySet(ds, "cyclic", 9, benchSeed+109)
	for _, wco := range []bool{false, true} {
		name := "backtracking"
		if wco {
			name = "wco-join"
		}
		rc := benchRC()
		rc.Engine.WCOSearch = wco
		b.Run(name, func(b *testing.B) {
			replayBench(b, harness.TurboFlux, ds, qs, rc)
		})
	}
}
