package turboflux

import (
	"testing"
)

// socialQuery builds the two-Person knows query used across these tests.
// Labels: 0:Person; edges: 2:knows (matching the multiFixture convention).
func socialQuery() *Query {
	q := NewQuery(2)
	q.SetLabels(0, 0)
	q.SetLabels(1, 0)
	_ = q.AddEdge(0, 2, 1)
	return q
}

func TestDurableMultiFreshAndReopen(t *testing.T) {
	dir := t.TempDir()
	boot := []Update{
		DeclareVertex(1, 0),
		DeclareVertex(2, 0),
		DeclareVertex(3, 0),
	}
	d, err := OpenDurableMulti(dir, DurableMultiOptions{Fsync: "always", Bootstrap: boot})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Recovery().Fresh {
		t.Fatalf("recovery = %+v, want fresh", d.Recovery())
	}
	if err := d.Register("social", socialQuery(), Options{}); err != nil {
		t.Fatal(err)
	}
	counts, err := d.Insert(1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if counts["social"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if _, err := d.Insert(2, 2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Delete(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	lsn := d.LSN()
	if lsn == 0 {
		t.Fatal("LSN zero after journaled updates")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the graph comes back from the journal; registrations do not —
	// the replacement query's initial matching covers the recovered state.
	d2, err := OpenDurableMulti(dir, DurableMultiOptions{Fsync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close() //tf:unchecked-ok test cleanup
	rec := d2.Recovery()
	if rec.Fresh {
		t.Fatal("second open must not be fresh")
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("clean close left %d torn bytes", rec.TruncatedBytes)
	}
	if got := d2.Graph().NumEdges(); got != 1 {
		t.Fatalf("recovered edges = %d, want 1", got)
	}
	if got := d2.Queries(); len(got) != 0 {
		t.Fatalf("registrations must not survive reopen, got %v", got)
	}
	if err := d2.Register("social", socialQuery(), Options{}); err != nil {
		t.Fatal(err)
	}
	init := d2.InitialMatches()
	if init["social"] != 1 {
		t.Fatalf("initial after recovery = %v, want the surviving knows edge", init)
	}
	// Matching resumes where the log ends.
	counts, err = d2.Insert(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if counts["social"] != 1 {
		t.Fatalf("counts after recovery = %v", counts)
	}
	if d2.LSN() <= lsn {
		t.Fatalf("LSN %d did not advance past %d", d2.LSN(), lsn)
	}
	if st := d2.Stats(); st["social"].PositiveMatches != 1 {
		t.Fatalf("stats = %+v", st["social"])
	}
}

func TestDurableMultiCompact(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurableMulti(dir, DurableMultiOptions{Fsync: "none"})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []Update{DeclareVertex(1, 0), DeclareVertex(2, 0)} {
		if _, err := d.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Insert(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurableMulti(dir, DurableMultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close() //tf:unchecked-ok test cleanup
	if d2.Recovery().Replayed != 0 {
		t.Fatalf("post-compact reopen replayed %d updates, want snapshot only", d2.Recovery().Replayed)
	}
	if got := d2.Graph().NumEdges(); got != 1 {
		t.Fatalf("recovered edges = %d", got)
	}
	if d2.VertexLabels() == nil || d2.EdgeLabels() == nil {
		t.Fatal("store dictionaries missing")
	}
}

func TestDurableMultiBadFsync(t *testing.T) {
	if _, err := OpenDurableMulti(t.TempDir(), DurableMultiOptions{Fsync: "sometimes"}); err == nil {
		t.Fatal("bad fsync policy must fail")
	}
}
