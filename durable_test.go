package turboflux

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// durableTestQuery is a 3-vertex path query over labeled vertices:
// u0(A) -e0-> u1(B) -e1-> u2(C).
func durableTestQuery(t *testing.T) *Query {
	t.Helper()
	q := NewQuery(3)
	q.SetLabels(0, 0)
	q.SetLabels(1, 1)
	q.SetLabels(2, 2)
	if err := q.AddEdge(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.AddEdge(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	return q
}

// durableTestStream builds a seeded bootstrap (labeled vertices) and a
// dense insert/delete stream with fan-out, so transcripts are sensitive
// to any state divergence.
func durableTestStream(seed int64, n int) (bootstrap, ups []Update) {
	for v := VertexID(0); v < 4; v++ {
		bootstrap = append(bootstrap, DeclareVertex(v, 0))
	}
	for v := VertexID(10); v < 16; v++ {
		bootstrap = append(bootstrap, DeclareVertex(v, 1))
	}
	for v := VertexID(20); v < 26; v++ {
		bootstrap = append(bootstrap, DeclareVertex(v, 2))
	}
	rng := rand.New(rand.NewSource(seed))
	live := map[Edge]bool{}
	for i := 0; i < n; i++ {
		var e Edge
		if rng.Intn(2) == 0 {
			e = Edge{From: VertexID(rng.Intn(4)), Label: 0, To: VertexID(10 + rng.Intn(6))}
		} else {
			e = Edge{From: VertexID(10 + rng.Intn(6)), Label: 1, To: VertexID(20 + rng.Intn(6))}
		}
		if live[e] {
			ups = append(ups, Delete(e.From, e.Label, e.To))
			delete(live, e)
		} else {
			ups = append(ups, Insert(e.From, e.Label, e.To))
			live[e] = true
		}
	}
	return bootstrap, ups
}

// transcriptRecorder appends one line per reported match.
func transcriptRecorder(b *strings.Builder) func(bool, []VertexID) {
	return func(positive bool, m []VertexID) {
		sign := "+"
		if !positive {
			sign = "-"
		}
		fmt.Fprintf(b, "%s %v\n", sign, m)
	}
}

func TestOpenDurableFreshAndRecover(t *testing.T) {
	dir := t.TempDir()
	bootstrap, ups := durableTestStream(7, 60)
	q := durableTestQuery(t)

	var live strings.Builder
	eng, err := OpenDurable(dir, q, DurableOptions{
		Options:   Options{OnMatch: transcriptRecorder(&live)},
		Bootstrap: bootstrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Recovery().Fresh {
		t.Fatal("first open of an empty dir must be Fresh")
	}
	if _, err := eng.ApplyAll(ups); err != nil {
		t.Fatal(err)
	}
	wantLSN := uint64(len(bootstrap) + len(ups))
	if eng.LSN() != wantLSN {
		t.Fatalf("LSN = %d, want %d", eng.LSN(), wantLSN)
	}
	if !strings.Contains(live.String(), "+") || !strings.Contains(live.String(), "-") {
		t.Fatalf("stream produced no fan-out; transcript:\n%.300s", live.String())
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the graph comes back and the rebuilt DCG matches a fresh
	// engine over the same graph (recovery recomputes the plan from
	// current statistics, so that — not the lived-through engine's DCG,
	// whose plan was frozen at build time — is the reference).
	eng2, err := OpenDurable(dir, durableTestQuery(t), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close() //tf:unchecked-ok test cleanup
	rec := eng2.Recovery()
	if rec.Fresh || rec.Replayed != int(wantLSN) {
		t.Fatalf("recovery = %+v, want %d replayed", rec, wantLSN)
	}
	if got, want := eng2.Stats().DCGEdges, referenceDCGEdges(t, bootstrap, ups); got != want {
		t.Fatalf("recovered DCG has %d edges, fresh engine over same graph has %d", got, want)
	}
}

// referenceDCGEdges builds the graph by direct application and returns
// the DCG size of a fresh engine over it.
func referenceDCGEdges(t *testing.T, histories ...[]Update) int {
	t.Helper()
	g := NewGraph()
	for _, h := range histories {
		for _, u := range h {
			u.Apply(g)
		}
	}
	ref, err := NewEngine(g, durableTestQuery(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ref.Stats().DCGEdges
}

func TestOpenDurableCompactCycle(t *testing.T) {
	dir := t.TempDir()
	bootstrap, ups := durableTestStream(11, 80)
	eng, err := OpenDurable(dir, durableTestQuery(t), DurableOptions{Bootstrap: bootstrap})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyAll(ups[:40]); err != nil {
		t.Fatal(err)
	}
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyAll(ups[40:]); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := OpenDurable(dir, durableTestQuery(t), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close() //tf:unchecked-ok test cleanup
	rec := eng2.Recovery()
	if rec.SnapshotLSN != uint64(len(bootstrap)+40) || rec.Replayed != 40 {
		t.Fatalf("recovery = %+v, want snapshot at %d + 40 replayed", rec, len(bootstrap)+40)
	}
	if got, want := eng2.Stats().DCGEdges, referenceDCGEdges(t, bootstrap, ups); got != want {
		t.Fatalf("recovered DCG has %d edges, fresh engine over same graph has %d", got, want)
	}
}

func TestOpenDurableDictAdoption(t *testing.T) {
	dir := t.TempDir()
	vd, ed := NewDict(), NewDict()
	a := vd.Intern("A")
	follows := ed.Intern("follows")
	eng, err := OpenDurable(dir, durableTestQuery(t), DurableOptions{
		VertexLabels: vd, EdgeLabels: ed,
		Bootstrap: []Update{DeclareVertex(1, a), DeclareVertex(2, a)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Insert(1, follows, 2); err != nil {
		t.Fatal(err)
	}
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with fresh (empty) dicts: recovered names are re-interned
	// into them with identical labels.
	vd2, ed2 := NewDict(), NewDict()
	eng2, err := OpenDurable(dir, durableTestQuery(t), DurableOptions{VertexLabels: vd2, EdgeLabels: ed2})
	if err != nil {
		t.Fatal(err)
	}
	if l, ok := vd2.Lookup("A"); !ok || l != a {
		t.Fatalf("vertex dict not adopted: %d,%v", l, ok)
	}
	if l, ok := ed2.Lookup("follows"); !ok || l != follows {
		t.Fatalf("edge dict not adopted: %d,%v", l, ok)
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}

	// Conflicting pre-interned names must be rejected, not silently
	// remapped.
	bad := NewDict()
	bad.Intern("not-A")
	if _, err := OpenDurable(dir, durableTestQuery(t), DurableOptions{VertexLabels: bad}); err == nil {
		t.Fatal("conflicting dictionary should fail OpenDurable")
	}
}

// TestDurableTranscriptEquivalence is the acceptance property: after a
// crash at any truncation point of the final journaled record, the
// recovered engine's transcript over subsequent updates is byte-identical
// to a never-crashed engine fed the same surviving prefix and the same
// subsequent updates.
func TestDurableTranscriptEquivalence(t *testing.T) {
	bootstrap, ups := durableTestStream(42, 90)
	phase1, phase2 := ups[:60], ups[60:]
	q := func() *Query { return durableTestQuery(t) }

	// Journal bootstrap + phase1, then crash (abandon without Close).
	dir := t.TempDir()
	eng, err := OpenDurable(dir, q(), DurableOptions{Fsync: "none", Bootstrap: bootstrap})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyAll(phase1); err != nil {
		t.Fatal(err)
	}

	// The last journaled record's frame: find the log tail length so we
	// can truncate at every byte offset of the final record.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	lastSeg := segs[len(segs)-1]
	full, err := os.ReadFile(lastSeg)
	if err != nil {
		t.Fatal(err)
	}

	// uncrashedTranscript replays prefixN surviving updates on a fresh
	// in-memory engine, then records the transcript of phase2.
	uncrashedTranscript := func(prefixN int) string {
		g := NewGraph()
		for _, u := range bootstrap {
			u.Apply(g)
		}
		var b strings.Builder
		ref, err := NewEngine(g, q(), Options{OnMatch: transcriptRecorder(&b)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.ApplyAll(phase1[:prefixN]); err != nil {
			t.Fatal(err)
		}
		b.Reset()
		if _, err := ref.ApplyAll(phase2); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	// Sweep truncation offsets covering the last few records of the log
	// tail (every byte offset of the final record and into the two
	// before it, exercising multiple prefix lengths).
	for cut := len(full) - 40; cut <= len(full); cut++ {
		crash := t.TempDir()
		if err := copyStoreDir(t, dir, crash); err != nil {
			t.Fatal(err)
		}
		target := filepath.Join(crash, filepath.Base(lastSeg))
		if err := os.Truncate(target, int64(cut)); err != nil {
			t.Fatal(err)
		}

		var b strings.Builder
		rec, err := OpenDurable(crash, q(), DurableOptions{
			Options: Options{OnMatch: transcriptRecorder(&b)},
			Fsync:   "none",
		})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		prefixN := int(rec.LSN()) - len(bootstrap)
		if prefixN < 0 || prefixN > len(phase1) {
			t.Fatalf("cut %d: surviving prefix %d out of range", cut, prefixN)
		}
		if _, err := rec.ApplyAll(phase2); err != nil {
			t.Fatalf("cut %d: phase2 on recovered engine: %v", cut, err)
		}
		got := b.String()
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}

		if want := uncrashedTranscript(prefixN); got != want {
			t.Fatalf("cut %d (prefix %d): transcripts differ\nrecovered:\n%.400s\nuncrashed:\n%.400s",
				cut, prefixN, got, want)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// copyStoreDir clones the flat store directory src into dst.
func copyStoreDir(t *testing.T, src, dst string) error {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// TestDurableSnapshotRecoveryDeterminism pins the guarantee for
// snapshot-based recovery (a Compact in the history): reopening is fully
// deterministic — independent recoveries produce byte-identical
// transcripts — and the stream's match multiset equals the never-crashed
// engine's. Byte-identical *order* relative to the never-crashed engine
// is guaranteed only for pure log-replay recovery
// (TestDurableTranscriptEquivalence): snapshots store edges in canonical
// sorted order, so adjacency-list order — and with it within-update
// emission order — is normalized by recovery.
func TestDurableSnapshotRecoveryDeterminism(t *testing.T) {
	bootstrap, ups := durableTestStream(23, 120)
	phase1, phase2 := ups[:70], ups[70:]

	// Journal bootstrap + phase1 and snapshot there; the store on disk now
	// recovers to the post-phase1 state.
	dir := t.TempDir()
	eng, err := OpenDurable(dir, durableTestQuery(t), DurableOptions{Bootstrap: bootstrap})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyAll(phase1); err != nil {
		t.Fatal(err)
	}
	if err := eng.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Never-crashed reference: a fresh engine lives through the same
	// history and then phase2.
	g := NewGraph()
	for _, u := range bootstrap {
		u.Apply(g)
	}
	var refB strings.Builder
	ref, err := NewEngine(g, durableTestQuery(t), Options{OnMatch: transcriptRecorder(&refB)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ApplyAll(phase1); err != nil {
		t.Fatal(err)
	}
	refB.Reset()
	if _, err := ref.ApplyAll(phase2); err != nil {
		t.Fatal(err)
	}

	reopen := func() string {
		crash := t.TempDir()
		if err := copyStoreDir(t, dir, crash); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		rec, err := OpenDurable(crash, durableTestQuery(t), DurableOptions{
			Options: Options{OnMatch: transcriptRecorder(&b)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Recovery().SnapshotLSN == 0 {
			t.Fatal("expected snapshot-based recovery")
		}
		if _, err := rec.ApplyAll(phase2); err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	first := reopen()
	if second := reopen(); second != first {
		t.Fatalf("snapshot recovery is nondeterministic:\n%.300s\nvs\n%.300s", first, second)
	}
	sorted := func(s string) []string {
		lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
		sort.Strings(lines)
		return lines
	}
	got, want := sorted(first), sorted(refB.String())
	if len(got) != len(want) {
		t.Fatalf("recovered stream reported %d matches, never-crashed %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match multiset diverges at %d: %q vs %q", i, got[i], want[i])
		}
	}
}
