// Time-travel matching over a multi-version store — the paper's stated
// future work (Section 2.2): running TurboFlux under MVCC so that match
// reporting and historical analysis can proceed concurrently with writes
// under snapshot isolation.
//
// A writer commits transaction batches to an mvcc.Store. A streaming
// TurboFlux engine catches up through the committed log (Since), while an
// analyst asks "how many rings existed at commit N?" against materialized
// snapshots — answers that stay stable no matter how far the stream has
// advanced.
//
// Run with: go run ./examples/timetravel
package main

import (
	"fmt"
	"log"

	"turboflux"
	"turboflux/internal/matcher"
	"turboflux/internal/mvcc"
	"turboflux/internal/query"
	"turboflux/internal/stream"
)

func main() {
	const transfer turboflux.Label = 0

	// Triangle of transfers: u0 -> u1 -> u2 -> u0.
	q := query.NewGraph(3)
	must(q.AddEdge(0, transfer, 1))
	must(q.AddEdge(1, transfer, 2))
	must(q.AddEdge(2, transfer, 0))

	store := mvcc.NewStore()
	eng, err := turboflux.NewEngine(turboflux.NewGraph(), q, turboflux.Options{
		Semantics: turboflux.Isomorphism,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Writer: commit batches; the streaming engine catches up after each.
	var seen mvcc.Version
	batches := [][]stream.Update{
		{stream.Insert(1, transfer, 2), stream.Insert(2, transfer, 3)},
		{stream.Insert(3, transfer, 1)},                                // closes ring 1-2-3
		{stream.Insert(3, transfer, 4), stream.Insert(4, transfer, 2)}, // ring 2-3-4
		{stream.Delete(2, transfer, 3)},                                // breaks both
	}
	for _, b := range batches {
		v := store.Commit(b)
		ups, cur, err := store.Since(seen)
		if err != nil {
			log.Fatal(err)
		}
		var pos, neg int64
		for _, u := range ups {
			n, err := eng.Apply(u)
			if err != nil {
				log.Fatal(err)
			}
			if u.Op == stream.OpDelete {
				neg += n
			} else {
				pos += n
			}
		}
		seen = cur
		fmt.Printf("commit %d: engine saw +%d/-%d ring alignments\n", v, pos, neg)
	}

	// Analyst: ring counts as of every retained version, via snapshots.
	fmt.Println("time travel:")
	for v := mvcc.Version(0); v <= store.Current(); v++ {
		g, err := store.Materialize(v)
		if err != nil {
			log.Fatal(err)
		}
		n, err := matcher.Count(g, q, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  at commit %d: %d ring alignment(s), %d live edges\n",
			v, n, g.NumEdges())
	}

	// Garbage-collect everything below the last version; old snapshots go
	// away, current state survives.
	store.Truncate(store.Current())
	if _, err := store.Materialize(1); err != nil {
		fmt.Println("after GC:", err)
	}
	st := store.Stats()
	fmt.Printf("store after GC: %d edge keys, %d intervals, horizon %d\n",
		st.EdgeKeys, st.Intervals, st.Horizon)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
