// Quickstart: continuous subgraph matching in a dozen lines.
//
// The query is a two-hop pattern Person -owns-> Account -pays-> Account.
// An initial graph holds one person with an account; streaming in a
// payment edge completes the pattern (positive match), deleting it
// retracts the match (negative match).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"turboflux"
)

func main() {
	vocab, edges := turboflux.NewDict(), turboflux.NewDict()
	person := vocab.Intern("Person")
	account := vocab.Intern("Account")
	owns := edges.Intern("owns")
	pays := edges.Intern("pays")

	// Initial graph g0: alice(1) owns account 10; account 20 exists.
	g := turboflux.NewGraph()
	g.EnsureVertex(1, person)
	g.EnsureVertex(10, account)
	g.EnsureVertex(20, account)
	g.InsertEdge(1, owns, 10)

	// Query: u0(Person) -owns-> u1(Account) -pays-> u2(Account).
	q := turboflux.NewQuery(3)
	q.SetLabels(0, person)
	q.SetLabels(1, account)
	q.SetLabels(2, account)
	must(q.AddEdge(0, owns, 1))
	must(q.AddEdge(1, pays, 2))

	eng, err := turboflux.NewEngine(g, q, turboflux.Options{
		OnMatch: func(positive bool, m []turboflux.VertexID) {
			kind := "new match"
			if !positive {
				kind = "retracted"
			}
			fmt.Printf("%s: person=%d account=%d payee=%d\n", kind, m[0], m[1], m[2])
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("initial matches: %d\n", eng.InitialMatches())

	// Stream: the payment completes the pattern, its deletion retracts it.
	if _, err := eng.Insert(10, pays, 20); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Delete(10, pays, 20); err != nil {
		log.Fatal(err)
	}

	st := eng.Stats()
	fmt.Printf("totals: %d positive, %d negative, DCG holds %d edges (%d bytes)\n",
		st.PositiveMatches, st.NegativeMatches, st.DCGEdges, st.IntermediateBytes)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
