// Network-intrusion monitoring, the paper's cyber-security scenario
// (Section 1): worm spread is modeled as a fan-out pattern — one host
// opens SSH connections to two different hosts which each immediately
// open SSH connections onward. The monitor runs over a Netflow-like
// traffic stream (unlabeled hosts, eight protocol edge labels,
// heavy-tailed host popularity), the label-poor regime of the paper's
// Netflow experiments.
//
// Run with: go run ./examples/netmonitor
package main

import (
	"fmt"
	"log"

	"turboflux"
	"turboflux/internal/workload"
)

func main() {
	// Synthetic traffic substitute for the CAIDA traces (DESIGN.md §4).
	ds := workload.Netflow(workload.NetflowConfig{
		Hosts:          800,
		Triples:        12000,
		StreamFraction: 0.25,
		Seed:           11,
	})

	// Worm pattern: u0 -ssh-> u1 -ssh-> u2 and u0 -ssh-> u3 -ssh-> u4,
	// a two-branch propagation tree. No vertex labels exist in Netflow.
	ssh := workload.FlowSSH
	q := turboflux.NewQuery(5)
	must(q.AddEdge(0, ssh, 1))
	must(q.AddEdge(1, ssh, 2))
	must(q.AddEdge(0, ssh, 3))
	must(q.AddEdge(3, ssh, 4))

	alerts := 0
	eng, err := turboflux.NewEngine(ds.Graph, q, turboflux.Options{
		Semantics: turboflux.Isomorphism,
		OnMatch: func(positive bool, m []turboflux.VertexID) {
			if positive {
				alerts++
				if alerts <= 5 {
					fmt.Printf("ALERT: possible worm at host %d (spread: %d->%d, %d->%d)\n",
						m[0], m[1], m[2], m[3], m[4])
				}
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	existing := eng.InitialMatches()
	fmt.Printf("baseline: %d pattern instances already in the trace\n", existing)

	if _, err := eng.ApplyAll(ds.Stream); err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("monitored %d flow updates: %d new alerts (%d shown), DCG %d edges (%s used as index)\n",
		len(ds.Stream), st.PositiveMatches, min(alerts, 5), st.DCGEdges,
		fmtBytes(st.IntermediateBytes))
}

func fmtBytes(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
