// Social-stream monitoring over the LSBench-like workload: track a
// "viral post" pattern — a post created by a channel moderator that two
// distinct users like — as edges stream in and out.
//
// The example demonstrates the full dynamic cycle: initial matches over
// g0, positive matches as the stream inserts likes, and negative matches
// when edges are deleted (e.g. a user retracting a like).
//
// Run with: go run ./examples/socialstream
package main

import (
	"fmt"
	"log"

	"turboflux"
	"turboflux/internal/workload"
)

func main() {
	ds := workload.LSBench(workload.LSBenchConfig{
		Users:          800,
		StreamFraction: 0.15,
		DeletionRate:   0.05, // 5% of streamed inserts are followed by a deletion
		Seed:           3,
	})
	sc := ds.Schema

	// Query: a post pinned in a moderated channel that two distinct users
	// like — u0(User) -moderatorOf-> u1(Channel); u2(Post) -pinnedIn-> u1;
	// u3(User) -likes-> u2; u4(User) -likes-> u2.
	userL := sc.VertexTypes[workload.TypeUser]
	chanL := sc.VertexTypes[workload.TypeChannel]
	postL := sc.VertexTypes[workload.TypePost]
	q := turboflux.NewQuery(5)
	q.SetLabels(0, userL)
	q.SetLabels(1, chanL)
	q.SetLabels(2, postL)
	q.SetLabels(3, userL)
	q.SetLabels(4, userL)
	must(q.AddEdge(0, workload.EdgeModeratorOf, 1))
	must(q.AddEdge(2, workload.EdgePinnedIn, 1))
	must(q.AddEdge(3, workload.EdgeLikes, 2))
	must(q.AddEdge(4, workload.EdgeLikes, 2))

	var pos, neg int64
	var lastMatch []turboflux.VertexID
	eng, err := turboflux.NewEngine(ds.Graph, q, turboflux.Options{
		Semantics: turboflux.Isomorphism,
		OnMatch: func(positive bool, m []turboflux.VertexID) {
			if positive {
				pos++
				lastMatch = append(lastMatch[:0], m...)
				if pos <= 3 {
					fmt.Printf("viral: post %d in channel %d (moderator %d, fans %d & %d)\n",
						m[2], m[1], m[0], m[3], m[4])
				}
			} else {
				neg++
				if neg <= 3 {
					fmt.Printf("cooled off: post %d lost pattern support\n", m[2])
				}
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("initial viral posts: %d\n", eng.InitialMatches())
	if _, err := eng.ApplyAll(ds.Stream); err != nil {
		log.Fatal(err)
	}

	// A fan retracts their like: the engine reports every pattern instance
	// the retraction destroys as a negative match.
	if lastMatch != nil {
		n, err := eng.Delete(lastMatch[3], workload.EdgeLikes, lastMatch[2])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("user %d unliked post %d: %d instance(s) retracted\n",
			lastMatch[3], lastMatch[2], n)
	}

	st := eng.Stats()
	fmt.Printf("replayed %d updates: +%d / -%d pattern changes, DCG %d edges\n",
		len(ds.Stream), st.PositiveMatches, st.NegativeMatches, st.DCGEdges)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
