// Fraud-ring detection, the paper's motivating banking scenario
// (Section 1): fraudsters organize into rings, detectable as cyclic money
// flows. The query is a ring of four accounts transferring in a cycle,
// each account owned by a distinct customer — under subgraph isomorphism
// so one account cannot play two ring positions.
//
// A synthetic transaction stream of mostly-benign transfers is replayed;
// a planted ring fires the alert the moment its closing transfer lands.
// Note that a ring of k accounts is reported once per rotation (k
// automorphic mappings); deduplicating rotations is application policy.
//
// Run with: go run ./examples/frauddetection
package main

import (
	"fmt"
	"log"
	"math/rand"

	"turboflux"
)

const (
	customer turboflux.Label = iota
	account
)

const (
	ownsEdge turboflux.Label = iota
	transferEdge
)

func main() {
	const nCustomers = 500
	rng := rand.New(rand.NewSource(7))

	// g0: every customer owns one account; no transfers yet. Customer i is
	// vertex i, their account is vertex 10000+i.
	g := turboflux.NewGraph()
	acct := func(i int) turboflux.VertexID { return turboflux.VertexID(10000 + i) }
	for i := 0; i < nCustomers; i++ {
		g.EnsureVertex(turboflux.VertexID(i), customer)
		g.EnsureVertex(acct(i), account)
		g.InsertEdge(turboflux.VertexID(i), ownsEdge, acct(i))
	}

	// Ring query: accounts u4 -> u5 -> u6 -> u7 -> u4 in a transfer cycle,
	// owned by customers u0..u3 respectively.
	q := turboflux.NewQuery(8)
	for u := 0; u < 4; u++ {
		q.SetLabels(turboflux.VertexID(u), customer)
		q.SetLabels(turboflux.VertexID(u+4), account)
		must(q.AddEdge(turboflux.VertexID(u), ownsEdge, turboflux.VertexID(u+4)))
	}
	for u := 4; u < 8; u++ {
		next := turboflux.VertexID(4 + (u-4+1)%4)
		must(q.AddEdge(turboflux.VertexID(u), transferEdge, next))
	}

	alerts := 0
	eng, err := turboflux.NewEngine(g, q, turboflux.Options{
		Semantics: turboflux.Isomorphism,
		OnMatch: func(positive bool, m []turboflux.VertexID) {
			if !positive {
				return
			}
			alerts++
			if alerts <= 4 {
				fmt.Printf("ALERT: ring %d -> %d -> %d -> %d (customers %d,%d,%d,%d)\n",
					m[4], m[5], m[6], m[7], m[0], m[1], m[2], m[3])
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Benign traffic: random transfers between accounts.
	for i := 0; i < 3000; i++ {
		from, to := rng.Intn(nCustomers), rng.Intn(nCustomers)
		if from == to {
			continue
		}
		if _, err := eng.Insert(acct(from), transferEdge, acct(to)); err != nil {
			log.Fatal(err)
		}
	}

	// The planted ring: accounts 7, 42, 99, 123 transfer in a cycle. The
	// first three transfers are invisible; the closing one fires.
	ring := []int{7, 42, 99, 123}
	fmt.Println("planting fraud ring", ring)
	for i := range ring {
		from, to := ring[i], ring[(i+1)%len(ring)]
		n, err := eng.Insert(acct(from), transferEdge, acct(to))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  transfer %d->%d: %d new ring(s) detected\n", acct(from), acct(to), n)
	}

	st := eng.Stats()
	fmt.Printf("done: %d ring alignments over the whole stream, DCG %d edges\n",
		st.PositiveMatches, st.DCGEdges)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
