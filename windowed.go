package turboflux

import "fmt"

// WindowedEngine runs continuous matching over a sliding window of the
// most recent edge insertions: when the window overflows, the oldest live
// edge expires and its negative matches are reported — the classic
// streaming deployment of continuous subgraph matching (the paper's
// Netflow scenario monitors exactly such rolling traffic windows). It is
// built directly on the engine's edge-deletion support.
type WindowedEngine struct {
	eng    *Engine
	window int

	fifo      []Edge // arrival order; may contain already-expired edges
	head      int
	live      map[Edge]bool
	liveCount int
}

// NewWindowedEngine returns a windowed matcher holding at most window live
// edges. The window starts empty; labeled vertices are declared through
// DeclareVertex.
func NewWindowedEngine(q *Query, window int, opt Options) (*WindowedEngine, error) {
	if window <= 0 {
		return nil, fmt.Errorf("turboflux: window must be positive, got %d", window)
	}
	eng, err := NewEngine(NewGraph(), q, opt)
	if err != nil {
		return nil, err
	}
	return &WindowedEngine{
		eng:    eng,
		window: window,
		live:   make(map[Edge]bool),
	}, nil
}

// DeclareVertex registers a labeled vertex. Vertices never expire; only
// edges are windowed.
func (w *WindowedEngine) DeclareVertex(v VertexID, labels ...Label) error {
	_, err := w.eng.Apply(DeclareVertex(v, labels...))
	return err
}

// Insert adds an edge to the window, reporting the positive matches it
// creates and the negative matches caused by edges it evicts. Inserting
// an edge already in the window is a no-op (its position is not
// refreshed).
func (w *WindowedEngine) Insert(from VertexID, l Label, to VertexID) (pos, neg int64, err error) {
	e := Edge{From: from, Label: l, To: to}
	if w.live[e] {
		return 0, 0, nil
	}
	pos, err = w.eng.Insert(from, l, to)
	if err != nil {
		return pos, 0, err
	}
	w.fifo = append(w.fifo, e)
	w.live[e] = true
	w.liveCount++
	for w.liveCount > w.window {
		old, ok := w.popOldest()
		if !ok {
			break
		}
		n, derr := w.eng.Delete(old.From, old.Label, old.To)
		neg += n
		if derr != nil {
			return pos, neg, derr
		}
	}
	return pos, neg, nil
}

// Delete explicitly retracts a live edge before it expires, reporting its
// negative matches. Retracting an edge outside the window is a no-op.
func (w *WindowedEngine) Delete(from VertexID, l Label, to VertexID) (int64, error) {
	e := Edge{From: from, Label: l, To: to}
	if !w.live[e] {
		return 0, nil
	}
	delete(w.live, e)
	w.liveCount--
	return w.eng.Delete(from, l, to)
}

// popOldest removes and returns the oldest live edge.
func (w *WindowedEngine) popOldest() (Edge, bool) {
	for w.head < len(w.fifo) {
		e := w.fifo[w.head]
		w.head++
		if w.live[e] {
			delete(w.live, e)
			w.liveCount--
			// Compact the consumed prefix occasionally.
			if w.head > 1024 && w.head*2 > len(w.fifo) {
				w.fifo = append([]Edge(nil), w.fifo[w.head:]...)
				w.head = 0
			}
			return e, true
		}
	}
	return Edge{}, false
}

// Len reports the number of live edges in the window.
func (w *WindowedEngine) Len() int { return w.liveCount }

// Window reports the configured capacity.
func (w *WindowedEngine) Window() int { return w.window }

// Stats returns the underlying engine's counters.
func (w *WindowedEngine) Stats() Stats { return w.eng.Stats() }

// Graph returns the current window contents as a graph. Read-only.
func (w *WindowedEngine) Graph() *Graph { return w.eng.Graph() }
