// Command turboflux-shard runs the TurboFlux cluster coordinator: a
// query-partitioned router in front of N shard servers (plain
// turboflux-serve instances). It speaks the same line protocol as
// turboflux-serve — clients cannot tell the two apart — plus SHARDSTATS
// for per-shard liveness and lag.
//
// Usage:
//
//	turboflux-shard -addr :7688 -shards host1:7687,host2:7687,...
//	               [-numeric-labels] [-dial-timeout 2s] [-request-timeout 5s]
//	               [-heartbeat 500ms] [-heartbeat-misses 3]
//	               [-drain 10s]
//
// Every registered query is placed on the least-loaded shard; every
// update is fanned to all shards in one total order, so each shard holds
// a full graph replica and evaluates only its own queries. Shards must
// start with label dictionaries identical to the coordinator's — pass
// -numeric-labels here exactly when the shards were started with it.
//
// See internal/shard for the architecture.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"turboflux"
	"turboflux/internal/shard"
)

func main() {
	addr := flag.String("addr", ":7688", "TCP listen address for clients")
	shards := flag.String("shards", "", "comma-separated shard server addresses (required)")
	numeric := flag.Bool("numeric-labels", false, "pre-intern labels 0..255; must match the shards' setting")
	dialTimeout := flag.Duration("dial-timeout", 2*time.Second, "timeout for each shard connect")
	reqTimeout := flag.Duration("request-timeout", 5*time.Second, "timeout for each shard request; a timed-out shard is marked down")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "shard liveness probe interval")
	misses := flag.Int("heartbeat-misses", 3, "consecutive failed probes before a shard is marked down")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout before connections are force-closed")
	flag.Parse()

	if err := run(*addr, *shards, *numeric, *dialTimeout, *reqTimeout, *heartbeat, *misses, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "turboflux-shard:", err)
		os.Exit(1)
	}
}

func run(addr, shards string, numeric bool, dialTimeout, reqTimeout, heartbeat time.Duration, misses int, drain time.Duration) error {
	var addrs []string
	for _, a := range strings.Split(shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("-shards is required (comma-separated shard addresses)")
	}
	opt := shard.Options{
		Shards:            addrs,
		DialTimeout:       dialTimeout,
		RequestTimeout:    reqTimeout,
		HeartbeatInterval: heartbeat,
		HeartbeatMisses:   misses,
	}
	if numeric {
		opt.VertexLabels = numericDict()
		opt.EdgeLabels = numericDict()
	}

	co, err := shard.New(opt)
	if err != nil {
		return err
	}
	if err := co.Listen(addr); err != nil {
		shutdownErr := shutdown(co, drain)
		if shutdownErr != nil {
			fmt.Fprintln(os.Stderr, "turboflux-shard: shutdown:", shutdownErr)
		}
		return err
	}
	fmt.Printf("# coordinating %d shards: %s\n", len(addrs), strings.Join(addrs, " "))
	fmt.Printf("# serving on %s (heartbeat=%s misses=%d)\n", co.Addr(), heartbeat, misses)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	//tf:goroutine serve-accept-loop
	go func() { serveErr <- co.Serve() }()

	select {
	case err := <-serveErr:
		shutdownErr := shutdown(co, drain)
		if err != nil {
			return err
		}
		return shutdownErr
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "turboflux-shard: signal received, shutting down")
		if err := shutdown(co, drain); err != nil {
			return err
		}
		if err := <-serveErr; err != nil {
			return err
		}
		fmt.Println("# shut down cleanly")
		return nil
	}
}

func shutdown(co *shard.Coordinator, drain time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return co.Shutdown(ctx)
}

// numericDict interns "0".."255" so Label(i) renders and parses as "i",
// matching turboflux-serve's -numeric-labels convention.
func numericDict() *turboflux.Dict {
	d := turboflux.NewDict()
	for i := 0; i < 256; i++ {
		d.Intern(strconv.Itoa(i))
	}
	return d
}
