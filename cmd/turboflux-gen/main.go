// Command turboflux-gen generates synthetic datasets and query sets in the
// text formats consumed by cmd/turboflux (see internal/stream).
//
// Usage:
//
//	turboflux-gen -dataset lsbench -users 1000 -queries 4 -qsize 6 -out ./data
//	turboflux-gen -dataset netflow -hosts 2000 -triples 40000 -qtype path -out ./data
//
// The output directory receives g0.txt (vertex declarations plus initial
// edges), stream.txt (the update stream) and query-<type>-<size>-<n>.txt
// files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"turboflux/internal/graph"
	"turboflux/internal/query"
	"turboflux/internal/stream"
	"turboflux/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "lsbench", "lsbench or netflow")
	users := flag.Int("users", 1000, "LSBench user scale factor")
	hosts := flag.Int("hosts", 2500, "Netflow host count")
	triples := flag.Int("triples", 50000, "Netflow triple count")
	streamFrac := flag.Float64("streamfrac", 0.1, "fraction of triples streamed as updates")
	delRate := flag.Float64("delrate", 0, "deletions per insertion in the stream")
	queries := flag.Int("queries", 4, "queries to generate")
	qtype := flag.String("qtype", "tree", "query shape: tree, graph, path, btree or overlap")
	qsize := flag.Int("qsize", 6, "query size (number of edges)")
	overlap := flag.Float64("overlap", 0.5, "fraction of queries sharing one spanning tree (qtype overlap)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", ".", "output directory")
	binaryG0 := flag.Bool("binary", false, "write g0 in the compact binary format (g0.tfg)")
	flag.Parse()

	if err := run(*dataset, *users, *hosts, *triples, *streamFrac, *delRate,
		*queries, *qtype, *qsize, *overlap, *seed, *out, *binaryG0); err != nil {
		fmt.Fprintln(os.Stderr, "turboflux-gen:", err)
		os.Exit(1)
	}
}

func run(dataset string, users, hosts, triples int, streamFrac, delRate float64,
	queries int, qtype string, qsize int, overlap float64, seed int64, out string, binaryG0 bool) error {
	var ds *workload.Dataset
	switch dataset {
	case "lsbench":
		ds = workload.LSBench(workload.LSBenchConfig{
			Users: users, StreamFraction: streamFrac, DeletionRate: delRate, Seed: seed,
		})
	case "netflow":
		ds = workload.Netflow(workload.NetflowConfig{
			Hosts: hosts, Triples: triples, StreamFraction: streamFrac,
			DeletionRate: delRate, Seed: seed,
		})
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	if binaryG0 {
		f, err := os.Create(filepath.Join(out, "g0.tfg"))
		if err != nil {
			return err
		}
		if err := ds.Graph.WriteBinary(f); err != nil {
			f.Close() //tf:unchecked-ok already failing; the write error wins
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else if err := writeGraph(filepath.Join(out, "g0.txt"), ds.Graph); err != nil {
		return err
	}
	if err := writeUpdates(filepath.Join(out, "stream.txt"), ds.Stream); err != nil {
		return err
	}
	var qs []*query.Graph
	switch qtype {
	case "tree":
		qs = ds.TreeQueries(queries, qsize, seed+int64(qsize))
	case "graph":
		qs = ds.CyclicQueries(queries, qsize, seed+int64(qsize))
	case "path":
		qs = ds.PathQueries(queries, qsize, seed+int64(qsize))
	case "btree":
		qs = ds.BinaryTreeQueries(queries, qsize, seed+int64(qsize))
	case "overlap":
		qs = ds.OverlappingQueries(queries, qsize, overlap, seed+int64(qsize))
	default:
		return fmt.Errorf("unknown query type %q", qtype)
	}
	for i, q := range qs {
		name := fmt.Sprintf("query-%s-%d-%02d.txt", qtype, qsize, i)
		if err := writeQuery(filepath.Join(out, name), q); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s: %d vertices, %d initial edges, %d stream updates, %d queries\n",
		out, ds.Graph.NumVertices(), ds.Graph.NumEdges(), len(ds.Stream), len(qs))
	return nil
}

// writeGraph emits vertex declarations followed by initial edges.
func writeGraph(path string, g *graph.Graph) error {
	var ups []stream.Update
	g.ForEachVertex(func(v graph.VertexID) {
		ups = append(ups, stream.DeclareVertex(v, g.Labels(v)...))
	})
	g.ForEachEdge(func(e graph.Edge) {
		ups = append(ups, stream.Insert(e.From, e.Label, e.To))
	})
	return writeUpdates(path, ups)
}

func writeQuery(path string, q *query.Graph) error {
	var ups []stream.Update
	for u := 0; u < q.NumVertices(); u++ {
		ups = append(ups, stream.DeclareVertex(graph.VertexID(u), q.Labels(graph.VertexID(u))...))
	}
	for _, e := range q.Edges() {
		ups = append(ups, stream.Insert(e.From, e.Label, e.To))
	}
	return writeUpdates(path, ups)
}

func writeUpdates(path string, ups []stream.Update) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := stream.Encode(f, ups); err != nil {
		f.Close() //tf:unchecked-ok already failing; the write error wins
		return err
	}
	return f.Close()
}
