package main

import (
	"fmt"
	"runtime"
	"time"

	"turboflux"
	"turboflux/internal/workload"
)

// mqoRow is one (mode, queries, overlap) cell of the multi-query sharing
// grid: an LSBench stream applied at workers=1 with round(overlap*queries)
// of the registered queries sharing one spanning tree.
type mqoRow struct {
	// Mode is "shared" (sub-pattern sharing on, DESIGN.md §17) or
	// "private" (the pre-MQO DCG-per-query baseline via SetSharing(false)).
	Mode    string  `json:"mode"`
	Queries int     `json:"queries"`
	Overlap float64 `json:"overlap"`

	Updates     int     `json:"updates"`
	NsPerOp     float64 `json:"ns_per_op"`
	UpdatesPerS float64 `json:"updates_per_s"`
	Matches     int64   `json:"matches"`

	SubPatterns       int    `json:"sub_patterns"`
	SharedSubPatterns int    `json:"shared_sub_patterns"`
	Refs              int    `json:"refs"`
	MaintainRuns      uint64 `json:"maintain_runs"`
	SavedEvals        uint64 `json:"saved_evals"`
	SharedReplays     uint64 `json:"shared_replays"`
	// IntermediateBytes counts each shared DCG once: the footprint side of
	// the dedup.
	IntermediateBytes int64 `json:"intermediate_bytes"`
}

// mqoReport is the BENCH_mqo.json document.
type mqoReport struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	Updates    int      `json:"updates_per_cell"`
	Rows       []mqoRow `json:"rows"`
	// Speedup64q075 is the headline acceptance number: shared-mode
	// throughput over private-mode throughput at 64 registered queries
	// with overlap 0.75, workers=1.
	Speedup64q075 float64 `json:"speedup_64q_075_shared_vs_private_w1"`
	// Growth ratios of per-update cost from 4 to 64 registered queries at
	// overlap 0.75 (linear growth would be 16): sharing must keep the
	// shared-mode ratio well under the private one.
	SharedGrowth64v4  float64 `json:"shared_nsop_growth_64q_vs_4q_075"`
	PrivateGrowth64v4 float64 `json:"private_nsop_growth_64q_vs_4q_075"`
}

// runMQO measures what sub-pattern sharing buys as the registered-query
// count and overlap fraction grow. quick reduces the grid for CI smoke.
func runMQO(out string, updates int, quick bool) error {
	overlaps := []float64{0, 0.25, 0.5, 0.75, 1}
	querySet := []int{4, 16, 64}
	if quick {
		overlaps = []float64{0.75}
		querySet = []int{4, 16}
		if updates > 6000 {
			updates = 6000
		}
	}
	rep := mqoReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Updates: updates}
	for _, q := range querySet {
		for _, f := range overlaps {
			for _, mode := range []string{"private", "shared"} {
				// Best of 2 runs: cells are short enough for one GC pause or
				// preemption to swing a run.
				var row mqoRow
				for r := 0; r < 2; r++ {
					got, err := mqoCell(mode, q, f, updates)
					if err != nil {
						return err
					}
					if r == 0 || got.UpdatesPerS > row.UpdatesPerS {
						row = got
					}
				}
				rep.Rows = append(rep.Rows, row)
				fmt.Printf("mqo %-7s queries=%-2d overlap=%.2f  %9.0f ups/s  subpats=%-2d shared=%-2d saved=%-8d bytes=%d\n",
					mode, q, f, row.UpdatesPerS, row.SubPatterns, row.SharedSubPatterns, row.SavedEvals, row.IntermediateBytes)
			}
		}
	}
	if sh, pr := findMQORow(rep.Rows, "shared", 64, 0.75), findMQORow(rep.Rows, "private", 64, 0.75); sh != nil && pr != nil && pr.UpdatesPerS > 0 {
		rep.Speedup64q075 = sh.UpdatesPerS / pr.UpdatesPerS
	}
	if a, b := findMQORow(rep.Rows, "shared", 4, 0.75), findMQORow(rep.Rows, "shared", 64, 0.75); a != nil && b != nil && a.NsPerOp > 0 {
		rep.SharedGrowth64v4 = b.NsPerOp / a.NsPerOp
	}
	if a, b := findMQORow(rep.Rows, "private", 4, 0.75), findMQORow(rep.Rows, "private", 64, 0.75); a != nil && b != nil && a.NsPerOp > 0 {
		rep.PrivateGrowth64v4 = b.NsPerOp / a.NsPerOp
	}
	fmt.Printf("mqo speedup (64 queries, overlap 0.75, shared vs private): %.2fx\n", rep.Speedup64q075)
	fmt.Printf("mqo ns/op growth 4->64 queries at overlap 0.75: shared %.1fx, private %.1fx (linear = 16x)\n",
		rep.SharedGrowth64v4, rep.PrivateGrowth64v4)
	return writeJSON(out, rep)
}

// mqoCell runs one grid cell: a fresh LSBench dataset, the overlapping
// query set registered with sharing on or off, and the dataset's update
// stream applied at workers=1 (the per-update evaluation cost sharing
// targets, with no pool parallelism to mask it).
func mqoCell(mode string, queries int, overlap float64, updates int) (mqoRow, error) {
	ds := workload.LSBench(workload.LSBenchConfig{
		Users: 300, StreamFraction: 0.4, DeletionRate: 0.2, Seed: 7,
	})
	qs := ds.OverlappingQueries(queries, 4, overlap, 11)
	m := turboflux.NewMultiEngine(ds.Graph)
	defer m.Close() //tf:unchecked-ok bench teardown
	m.SetSharing(mode == "shared")
	m.SetFanOutWorkers(1)
	var matches int64
	for i, q := range qs {
		err := m.Register(fmt.Sprintf("q%d", i), q, turboflux.Options{
			OnMatch: func(positive bool, _ []turboflux.VertexID) { matches++ },
		})
		if err != nil {
			return mqoRow{}, err
		}
	}
	stream := ds.Stream
	if len(stream) > updates {
		stream = stream[:updates]
	}
	// Warm up on the first tenth (root candidates, allocator steady
	// state), then time the rest.
	warm := len(stream) / 10
	for _, u := range stream[:warm] {
		if _, err := m.Apply(u); err != nil {
			return mqoRow{}, err
		}
	}
	timed := stream[warm:]
	start := time.Now()
	for _, u := range timed {
		if _, err := m.Apply(u); err != nil {
			return mqoRow{}, err
		}
	}
	wall := time.Since(start)

	st := m.MQOStats()
	return mqoRow{
		Mode:              mode,
		Queries:           queries,
		Overlap:           overlap,
		Updates:           len(timed),
		NsPerOp:           float64(wall.Nanoseconds()) / float64(len(timed)),
		UpdatesPerS:       float64(len(timed)) / wall.Seconds(),
		Matches:           matches,
		SubPatterns:       st.SubPatterns,
		SharedSubPatterns: st.SharedSubPatterns,
		Refs:              st.Refs,
		MaintainRuns:      st.MaintainRuns,
		SavedEvals:        st.SavedEvals,
		SharedReplays:     st.SharedReplays,
		IntermediateBytes: m.TotalIntermediateBytes(),
	}, nil
}

func findMQORow(rows []mqoRow, mode string, queries int, overlap float64) *mqoRow {
	for i := range rows {
		r := &rows[i]
		if r.Mode == mode && r.Queries == queries && r.Overlap == overlap {
			return r
		}
	}
	return nil
}
