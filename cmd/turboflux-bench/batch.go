package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"turboflux"
	"turboflux/internal/durable"
	"turboflux/internal/stream"
)

// batchRow is one (batch size, workers) cell of the batch-evaluation
// grid. Batch size 1 is the per-update baseline: ApplyBatch delegates a
// singleton batch straight to the Apply path, so the row measures the
// legacy pipeline on exactly the same stream.
type batchRow struct {
	BatchSize int `json:"batch_size"`
	Workers   int `json:"workers"`

	Updates     int     `json:"updates"`
	NsPerUpdate float64 `json:"ns_per_update"`
	UpdatesPerS float64 `json:"updates_per_s"`
	Matches     int64   `json:"matches"`
	Evals       uint64  `json:"evals"`
	Skipped     uint64  `json:"skipped"`
	Pooled      uint64  `json:"pooled"`
	Batches     uint64  `json:"pool_batches"`
}

// batchReport is the BENCH_batch.json document.
type batchReport struct {
	GOMAXPROCS     int        `json:"gomaxprocs"`
	Queries        int        `json:"queries"`
	EdgeLabels     int        `json:"edge_labels"`
	UpdatesPerCell int        `json:"updates_per_cell"`
	Rows           []batchRow `json:"rows"`

	// The acceptance numbers: batched per-update throughput over the
	// per-update baseline on the same multi-query mix, per worker count.
	Speedup256Workers1 float64 `json:"speedup_batch256_vs_batch1_workers1"`
	Speedup256Workers4 float64 `json:"speedup_batch256_vs_batch1_workers4"`

	// WAL recovery: replaying the same log tail record-at-a-time
	// (ReplayBatch=1, the legacy path) vs through the batched Applier.
	RecoveryRecords     int     `json:"recovery_records"`
	RecoveryUnbatchedMs float64 `json:"recovery_unbatched_ms"`
	RecoveryBatchedMs   float64 `json:"recovery_batched_ms"`
	RecoverySpeedup     float64 `json:"recovery_speedup"`
}

// runBatch measures the end-to-end batch evaluation pipeline: per-update
// throughput across batch sizes and worker counts on a multi-query mix,
// plus WAL recovery time with and without replay batching.
func runBatch(outPath string, updates, records int) error {
	const queries, labels = 24, 12
	rep := batchReport{
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Queries:        queries,
		EdgeLabels:     labels,
		UpdatesPerCell: updates,
	}
	for _, workers := range []int{1, 4} {
		for _, bs := range []int{1, 16, 256, 4096} {
			// Best of 3: cells run tens of milliseconds, so take the
			// least-disturbed repetition (same policy as -exp fanout).
			var row batchRow
			for r := 0; r < 3; r++ {
				got, err := batchCell(queries, labels, workers, bs, updates)
				if err != nil {
					return err
				}
				if r == 0 || got.UpdatesPerS > row.UpdatesPerS {
					row = got
				}
			}
			rep.Rows = append(rep.Rows, row)
			fmt.Printf("batch size=%-4d workers=%-2d  %9.0f ups/s  %7.0f ns/up  evals=%d skipped=%d pooled=%d\n",
				bs, workers, row.UpdatesPerS, row.NsPerUpdate, row.Evals, row.Skipped, row.Pooled)
		}
	}
	for _, w := range []int{1, 4} {
		base := findBatchRow(rep.Rows, 1, w)
		fast := findBatchRow(rep.Rows, 256, w)
		if base != nil && fast != nil && base.UpdatesPerS > 0 {
			s := fast.UpdatesPerS / base.UpdatesPerS
			if w == 1 {
				rep.Speedup256Workers1 = s
			} else {
				rep.Speedup256Workers4 = s
			}
		}
	}
	fmt.Printf("batch speedup (256 vs 1): %.2fx at workers=1, %.2fx at workers=4\n",
		rep.Speedup256Workers1, rep.Speedup256Workers4)

	if err := recoveryBench(&rep, records); err != nil {
		return err
	}
	fmt.Printf("recovery: %.1f ms unbatched, %.1f ms batched (%.2fx) over %d records\n",
		rep.RecoveryUnbatchedMs, rep.RecoveryBatchedMs, rep.RecoverySpeedup, rep.RecoveryRecords)
	return writeJSON(outPath, rep)
}

// batchCell runs one grid cell: queries 2-hop patterns spread over the
// edge labels (two queries per label, so label routing skips most
// engines and pooled updates still exist), fed the same effective
// insert/delete stream in chunks of batchSize.
func batchCell(queries, labels, workers, batchSize, updates int) (batchRow, error) {
	const nVertices = 2000
	g := turboflux.NewGraph()
	for v := turboflux.VertexID(1); v <= nVertices; v++ {
		if v%4 == 0 {
			g.EnsureVertex(v, 0)
		} else {
			g.EnsureVertex(v, 1)
		}
	}
	m := turboflux.NewMultiEngine(g)
	defer m.Close() //tf:unchecked-ok bench teardown
	m.SetFanOutWorkers(workers)

	var matches int64
	for i := 0; i < queries; i++ {
		l := turboflux.Label(i % labels)
		q := turboflux.NewQuery(3)
		q.SetLabels(0, 0)
		q.SetLabels(1, 0)
		q.SetLabels(2, 0)
		if err := q.AddEdge(0, l, 1); err != nil {
			return batchRow{}, err
		}
		if err := q.AddEdge(1, l, 2); err != nil {
			return batchRow{}, err
		}
		err := m.Register(fmt.Sprintf("q%d", i), q, turboflux.Options{
			OnMatch: func(positive bool, _ []turboflux.VertexID) { matches++ },
		})
		if err != nil {
			return batchRow{}, err
		}
	}

	// Deterministic LCG stream, every update effective (no duplicate
	// inserts, no absent deletes), generated up front — the timed loop
	// measures ApplyBatch alone.
	live := make([]turboflux.Edge, 0, updates)
	liveSet := make(map[turboflux.Edge]struct{}, updates)
	state := uint32(98765)
	next := func(n uint32) uint32 {
		state = state*1664525 + 1013904223
		return (state >> 8) % n
	}
	ups := make([]turboflux.Update, 0, updates)
	for k := 0; k < updates; k++ {
		if k%5 == 4 && len(live) > 0 {
			i := int(next(uint32(len(live))))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			delete(liveSet, e)
			ups = append(ups, turboflux.Delete(e.From, e.Label, e.To))
			continue
		}
		e := turboflux.Edge{Label: turboflux.Label(int(next(uint32(labels))))}
		for {
			e.From = turboflux.VertexID(next(nVertices) + 1)
			e.To = turboflux.VertexID(next(nVertices) + 1)
			if _, dup := liveSet[e]; !dup {
				break
			}
		}
		live = append(live, e)
		liveSet[e] = struct{}{}
		ups = append(ups, turboflux.Insert(e.From, e.Label, e.To))
	}

	// Warm up on the first tenth (DCG roots, pool spin-up, scratch
	// growth), then time the rest.
	warm := len(ups) / 10
	for _, chunk := range stream.Batches(ups[:warm], batchSize) {
		if _, err := m.ApplyBatch(chunk); err != nil {
			return batchRow{}, err
		}
	}
	timed := ups[warm:]
	start := time.Now()
	for _, chunk := range stream.Batches(timed, batchSize) {
		if _, err := m.ApplyBatch(chunk); err != nil {
			return batchRow{}, err
		}
	}
	wall := time.Since(start)

	fs := m.FanOutStats()
	return batchRow{
		BatchSize:   batchSize,
		Workers:     workers,
		Updates:     len(timed),
		NsPerUpdate: float64(wall.Nanoseconds()) / float64(len(timed)),
		UpdatesPerS: float64(len(timed)) / wall.Seconds(),
		Matches:     matches,
		Evals:       fs.Evals,
		Skipped:     fs.Skipped,
		Pooled:      fs.Pooled,
		Batches:     fs.Batches,
	}, nil
}

// recoveryBench writes one WAL and reopens it twice per mode, timing the
// log-tail replay with the legacy record-at-a-time path (ReplayBatch=1)
// and the batched Applier (default). Best of 3 reopens each.
func recoveryBench(rep *batchReport, records int) error {
	dir, err := os.MkdirTemp("", "tf-batch-rec-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir) //tf:unchecked-ok temp cleanup
	ups := durabilityUpdates(records)
	s, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNone})
	if err != nil {
		return err
	}
	for off := 0; off < len(ups); off += 1024 {
		end := off + 1024
		if end > len(ups) {
			end = len(ups)
		}
		if _, _, err := s.AppendBatch(ups[off:end]); err != nil {
			s.Close() //tf:unchecked-ok already failing
			return err
		}
		for _, u := range ups[off:end] {
			u.Apply(s.Graph())
		}
	}
	if err := s.Close(); err != nil {
		return err
	}

	reopen := func(replayBatch int) (float64, error) {
		best := 0.0
		for r := 0; r < 3; r++ {
			start := time.Now()
			s, err := durable.Open(dir, durable.Options{ReplayBatch: replayBatch})
			if err != nil {
				return 0, err
			}
			ms := float64(time.Since(start).Microseconds()) / 1e3
			replayed := s.Recovery().Replayed
			if err := s.Close(); err != nil {
				return 0, err
			}
			if replayed != len(ups) {
				return 0, fmt.Errorf("recovery replayed %d records, want %d", replayed, len(ups))
			}
			if r == 0 || ms < best {
				best = ms
			}
		}
		return best, nil
	}
	rep.RecoveryRecords = records
	if rep.RecoveryUnbatchedMs, err = reopen(1); err != nil {
		return err
	}
	if rep.RecoveryBatchedMs, err = reopen(0); err != nil {
		return err
	}
	if rep.RecoveryBatchedMs > 0 {
		rep.RecoverySpeedup = rep.RecoveryUnbatchedMs / rep.RecoveryBatchedMs
	}
	return nil
}

func findBatchRow(rows []batchRow, batchSize, workers int) *batchRow {
	for i := range rows {
		r := &rows[i]
		if r.BatchSize == batchSize && r.Workers == workers {
			return r
		}
	}
	return nil
}
