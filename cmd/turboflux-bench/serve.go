package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"turboflux"
	"turboflux/internal/server"
	"turboflux/internal/stats"
)

// serveReport is the BENCH_serve.json document: ingest throughput of the
// network serving subsystem under concurrent clients, and the
// subscriber fan-out latency distribution (update sent -> matching event
// received on a subscribed connection).
type serveReport struct {
	Clients       int    `json:"clients"`
	Queries       int    `json:"queries"`
	UpdatesPerCli int    `json:"updates_per_client"`
	BatchSize     int    `json:"batch_size"`
	Policy        string `json:"policy"`

	// Single-record ingest: every client Apply waits for its ack.
	IngestUpdates    int     `json:"ingest_updates"`
	IngestNsPerOp    float64 `json:"ingest_ns_per_op"`
	IngestUpdatesSec float64 `json:"ingest_updates_per_s"`

	// Batched ingest over the binary frame.
	BatchUpdates    int     `json:"batch_updates"`
	BatchNsPerOp    float64 `json:"batch_ns_per_op"`
	BatchUpdatesSec float64 `json:"batch_updates_per_s"`

	// Fan-out latency: one probe client applies matching updates while
	// subscribed; each sample is ack-to-event delivery time.
	FanoutSamples int     `json:"fanout_samples"`
	FanoutP50Us   float64 `json:"fanout_p50_us"`
	FanoutP95Us   float64 `json:"fanout_p95_us"`
	FanoutP99Us   float64 `json:"fanout_p99_us"`
}

// runServe benchmarks the TCP serving path end to end on a loopback
// listener: M registered queries, N concurrent writer clients, and a
// subscribed probe measuring fan-out delivery latency.
func runServe(out string, clients, queries, updatesPerClient int) error {
	const (
		batchSize = 256
		nVertices = 5000
	)
	vdict := turboflux.NewDict()
	vdict.Intern("P")
	edict := turboflux.NewDict()
	var boot []turboflux.Update
	for v := turboflux.VertexID(1); v <= nVertices; v++ {
		boot = append(boot, turboflux.DeclareVertex(v, 0))
	}
	srv, err := server.New(server.Options{
		Slow:         server.PolicyBlock,
		QueueDepth:   1024,
		VertexLabels: vdict,
		EdgeLabels:   edict,
		Bootstrap:    boot,
	})
	if err != nil {
		return err
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	//tf:goroutine bench-serve-loop
	go func() { serveDone <- srv.Serve() }()
	addr := srv.Addr().String()

	admin, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer admin.Close() //tf:unchecked-ok bench teardown
	for q := 0; q < queries; q++ {
		// Each query watches its own edge label, so every update triggers
		// evaluation of all M queries but matches exactly one.
		pattern := fmt.Sprintf("(a:P)-[:e%d]->(b:P)", q)
		if err := admin.Register(fmt.Sprintf("q%d", q), pattern); err != nil {
			return err
		}
	}

	// Phase 1: concurrent single-record ingest, acked per update.
	writers := make([]*server.Client, clients)
	for i := range writers {
		if writers[i], err = server.Dial(addr); err != nil {
			return err
		}
		defer writers[i].Close() //tf:unchecked-ok bench teardown
	}
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start := time.Now()
	for i, w := range writers {
		wg.Add(1)
		//tf:goroutine bench-writer
		go func(i int, w *server.Client) {
			defer wg.Done()
			for k := 0; k < updatesPerClient; k++ {
				from := turboflux.VertexID(uint32(i*updatesPerClient+k)%nVertices + 1)
				to := turboflux.VertexID(uint32(k*2654435761)%nVertices + 1)
				l := turboflux.Label(k % queries)
				if _, err := w.Apply(turboflux.Insert(from, l, to)); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", i, err)
					return
				}
			}
		}(i, w)
	}
	wg.Wait()
	ingestDur := time.Since(start)
	close(errCh)
	for err := range errCh {
		return err
	}
	ingestN := clients * updatesPerClient

	// Phase 2: batched ingest over the binary frame, one writer.
	batcher := writers[0]
	batchN := 0
	start = time.Now()
	for sent := 0; sent < updatesPerClient*clients; sent += batchSize {
		ups := make([]turboflux.Update, 0, batchSize)
		for k := 0; k < batchSize; k++ {
			from := turboflux.VertexID(uint32(sent+k)%nVertices + 1)
			to := turboflux.VertexID(uint32((sent+k)*40503)%nVertices + 1)
			ups = append(ups, turboflux.Delete(from, turboflux.Label(k%queries), to))
		}
		if _, err := batcher.BatchBinary(ups); err != nil {
			return err
		}
		batchN += len(ups)
	}
	batchDur := time.Since(start)

	// Phase 3: fan-out latency. The probe subscribes to q0 and times each
	// matching insert from ack to event arrival.
	probe, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer probe.Close() //tf:unchecked-ok bench teardown
	if _, err := probe.Subscribe("q0"); err != nil {
		return err
	}
	lat := stats.NewLatency(0)
	samples := updatesPerClient
	if samples > 2000 {
		samples = 2000
	}
	for k := 0; k < samples; k++ {
		from := turboflux.VertexID(uint32(k)%nVertices + 1)
		to := turboflux.VertexID(uint32(k*7919)%nVertices + 1)
		t0 := time.Now()
		ack, err := probe.Apply(turboflux.Insert(from, 0, to))
		if err != nil {
			return err
		}
		for ev := range probe.Events() {
			if ev.Seq == ack.Seq {
				break
			}
		}
		lat.Observe(time.Since(t0))
		if _, err := probe.Delete(from, 0, to); err != nil {
			return err
		}
		// Drain the retraction before the next sample.
		for ev := range probe.Events() {
			if !ev.Positive {
				break
			}
		}
	}

	if err := shutdownServer(srv); err != nil {
		return err
	}
	if err := <-serveDone; err != nil {
		return err
	}

	qs := lat.Quantiles(50, 95, 99)
	rep := serveReport{
		Clients:       clients,
		Queries:       queries,
		UpdatesPerCli: updatesPerClient,
		BatchSize:     batchSize,
		Policy:        server.PolicyBlock.String(),

		IngestUpdates:    ingestN,
		IngestNsPerOp:    float64(ingestDur.Nanoseconds()) / float64(ingestN),
		IngestUpdatesSec: float64(ingestN) / ingestDur.Seconds(),

		BatchUpdates:    batchN,
		BatchNsPerOp:    float64(batchDur.Nanoseconds()) / float64(batchN),
		BatchUpdatesSec: float64(batchN) / batchDur.Seconds(),

		FanoutSamples: int(lat.Count()),
		FanoutP50Us:   float64(qs[0].Nanoseconds()) / 1e3,
		FanoutP95Us:   float64(qs[1].Nanoseconds()) / 1e3,
		FanoutP99Us:   float64(qs[2].Nanoseconds()) / 1e3,
	}
	fmt.Printf("serve: %d clients x %d queries, ingest %.0f ups/s (%.0f ns/op), batch %.0f ups/s, fanout p50=%.0fus p95=%.0fus p99=%.0fus\n",
		clients, queries, rep.IngestUpdatesSec, rep.IngestNsPerOp, rep.BatchUpdatesSec,
		rep.FanoutP50Us, rep.FanoutP95Us, rep.FanoutP99Us)
	return writeJSON(out, rep)
}

func shutdownServer(srv *server.Server) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("[report written to %s]\n", path)
	return nil
}
