package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"turboflux/internal/durable"
	"turboflux/internal/graph"
	"turboflux/internal/stream"
)

// durabilityReport is the BENCH_durability.json document: the perf
// trajectory of the storage subsystem (append throughput per fsync
// policy, recovery time with and without a snapshot).
type durabilityReport struct {
	Records     int   `json:"records"`
	WALBytes    int64 `json:"wal_bytes"`
	SegmentSize int64 `json:"segment_size"`

	// Per-policy append cost. "always" runs a reduced record count (one
	// fdatasync per record) reported separately.
	AppendNsPerOpNone     float64 `json:"append_ns_per_op_none"`
	AppendNsPerOpInterval float64 `json:"append_ns_per_op_interval"`
	AppendMBPerSecNone    float64 `json:"append_mb_per_s_none"`
	AlwaysRecords         int     `json:"always_records"`
	AppendNsPerOpAlways   float64 `json:"append_ns_per_op_always"`

	// Full-log replay vs snapshot + empty tail.
	RecoveryReplayMs       float64 `json:"recovery_replay_ms"`
	RecoveryRecordsPerSec  float64 `json:"recovery_records_per_s"`
	RecoverySnapshotMs     float64 `json:"recovery_snapshot_ms"`
	CompactMs              float64 `json:"compact_ms"`
	SnapshotBytes          int64   `json:"snapshot_bytes"`
	RecoveredGraphVertices int     `json:"recovered_graph_vertices"`
	RecoveredGraphEdges    int     `json:"recovered_graph_edges"`
}

// durabilityUpdates synthesizes a mixed insert/delete/vertex stream over
// a mid-sized vertex universe.
func durabilityUpdates(n int) []stream.Update {
	ups := make([]stream.Update, 0, n)
	for i := 0; i < n; i++ {
		v := graph.VertexID(uint32(i*2654435761) % 50000)
		w := graph.VertexID(uint32((i+1)*40503) % 50000)
		l := graph.Label(i % 8)
		switch i % 16 {
		case 0:
			ups = append(ups, stream.DeclareVertex(v, l))
		case 7:
			ups = append(ups, stream.Delete(v, l, w))
		default:
			ups = append(ups, stream.Insert(v, l, w))
		}
	}
	return ups
}

func appendBench(dir string, ups []stream.Update, pol durable.Policy) (nsPerOp float64, walBytes int64, err error) {
	s, err := durable.Open(dir, durable.Options{Fsync: pol})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for _, u := range ups {
		if _, err := s.Append(u); err != nil {
			s.Close() //tf:unchecked-ok already failing
			return 0, 0, err
		}
		u.Apply(s.Graph())
	}
	elapsed := time.Since(start)
	if err := s.Close(); err != nil {
		return 0, 0, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		info, err := e.Info()
		if err == nil {
			walBytes += info.Size()
		}
	}
	return float64(elapsed.Nanoseconds()) / float64(len(ups)), walBytes, nil
}

// runDurability measures WAL append throughput and recovery time,
// writing the report to outPath.
func runDurability(outPath string, records int) error {
	rep := durabilityReport{Records: records, SegmentSize: 4 << 20}
	ups := durabilityUpdates(records)

	// Append throughput, fsync=none.
	dirNone, err := os.MkdirTemp("", "tf-durab-none-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirNone) //tf:unchecked-ok temp cleanup
	if rep.AppendNsPerOpNone, rep.WALBytes, err = appendBench(dirNone, ups, durable.FsyncNone); err != nil {
		return err
	}
	rep.AppendMBPerSecNone = float64(rep.WALBytes) / (rep.AppendNsPerOpNone * float64(records)) * 1e9 / (1 << 20)

	// Append throughput, fsync=interval (the default policy).
	dirInt, err := os.MkdirTemp("", "tf-durab-int-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirInt) //tf:unchecked-ok temp cleanup
	if rep.AppendNsPerOpInterval, _, err = appendBench(dirInt, ups, durable.FsyncInterval); err != nil {
		return err
	}

	// Append cost, fsync=always, on a reduced stream (one sync per op).
	rep.AlwaysRecords = records / 100
	if rep.AlwaysRecords > 2000 {
		rep.AlwaysRecords = 2000
	}
	dirAlw, err := os.MkdirTemp("", "tf-durab-alw-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirAlw) //tf:unchecked-ok temp cleanup
	if rep.AppendNsPerOpAlways, _, err = appendBench(dirAlw, ups[:rep.AlwaysRecords], durable.FsyncAlways); err != nil {
		return err
	}

	// Recovery time: full-log replay of the fsync=none store.
	start := time.Now()
	s, err := durable.Open(dirNone, durable.Options{})
	if err != nil {
		return err
	}
	rep.RecoveryReplayMs = float64(time.Since(start).Microseconds()) / 1e3
	rep.RecoveryRecordsPerSec = float64(s.Recovery().Replayed) / (rep.RecoveryReplayMs / 1e3)
	rep.RecoveredGraphVertices = s.Graph().NumVertices()
	rep.RecoveredGraphEdges = s.Graph().NumEdges()

	// Compact, then measure recovery from the snapshot (empty log tail).
	start = time.Now()
	if err := s.Compact(); err != nil {
		return err
	}
	rep.CompactMs = float64(time.Since(start).Microseconds()) / 1e3
	if err := s.Close(); err != nil {
		return err
	}
	entries, err := os.ReadDir(dirNone)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil && rep.SnapshotBytes < info.Size() {
			rep.SnapshotBytes = info.Size()
		}
	}
	start = time.Now()
	s2, err := durable.Open(dirNone, durable.Options{})
	if err != nil {
		return err
	}
	rep.RecoverySnapshotMs = float64(time.Since(start).Microseconds()) / 1e3
	if err := s2.Close(); err != nil {
		return err
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("durability: append %0.f ns/op (none), %0.f ns/op (interval), %0.f ns/op (always, n=%d)\n",
		rep.AppendNsPerOpNone, rep.AppendNsPerOpInterval, rep.AppendNsPerOpAlways, rep.AlwaysRecords)
	fmt.Printf("durability: recovery %.1f ms replay (%.0f records/s), %.1f ms from snapshot; report %s\n",
		rep.RecoveryReplayMs, rep.RecoveryRecordsPerSec, rep.RecoverySnapshotMs, outPath)
	return nil
}
