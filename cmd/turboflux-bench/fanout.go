package main

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"turboflux"
	"turboflux/internal/stats"
)

// fanoutRow is one (mode, queries, workers) cell of the fan-out scaling
// grid.
type fanoutRow struct {
	// Mode is "disjoint" (query i watches its own edge label — the
	// many-signatures deployment, where label routing pays) or "shared"
	// (every query watches the same label — the worst case for routing,
	// pure pool scaling).
	Mode    string `json:"mode"`
	Queries int    `json:"queries"`
	Workers int    `json:"workers"`

	Updates     int     `json:"updates"`
	NsPerOp     float64 `json:"ns_per_op"`
	UpdatesPerS float64 `json:"updates_per_s"`
	P50Us       float64 `json:"p50_us"`
	P95Us       float64 `json:"p95_us"`
	P99Us       float64 `json:"p99_us"`
	Matches     int64   `json:"matches"`
	Evals       uint64  `json:"evals"`
	Skipped     uint64  `json:"skipped"`
	Pooled      uint64  `json:"pooled"`
	Batches     uint64  `json:"batches"`
	PoolBusyNs  uint64  `json:"pool_busy_ns"`
}

// fanoutReport is the BENCH_fanout.json document.
type fanoutReport struct {
	GOMAXPROCS int         `json:"gomaxprocs"`
	Updates    int         `json:"updates_per_cell"`
	Rows       []fanoutRow `json:"rows"`
	// Speedup8q4w is the headline acceptance number: disjoint-mode
	// fan-out throughput at 8 registered queries with 4 workers over the
	// same workload with workers=1 (the legacy sequential path).
	Speedup8q4w float64 `json:"speedup_8q_4w_vs_1w_disjoint"`
}

// runFanout measures multi-query fan-out scaling: per-update latency and
// throughput across worker-pool sizes and registered-query counts, in
// both disjoint-label and shared-label workloads.
func runFanout(out string, updates int) error {
	gmp := runtime.GOMAXPROCS(0)
	workerSet := dedupInts([]int{1, 2, 4, gmp})
	querySet := []int{1, 2, 4, 8, 16}
	rep := fanoutReport{GOMAXPROCS: gmp, Updates: updates}
	for _, mode := range []string{"disjoint", "shared"} {
		for _, q := range querySet {
			for _, w := range workerSet {
				// Best of 3 runs: each cell is only tens of milliseconds, so
				// a single GC pause or scheduler preemption can swing a run
				// by 30%; the fastest repetition is the least-disturbed one.
				var row fanoutRow
				for rep := 0; rep < 3; rep++ {
					r, err := fanoutCell(mode, q, w, updates)
					if err != nil {
						return err
					}
					if rep == 0 || r.UpdatesPerS > row.UpdatesPerS {
						row = r
					}
				}
				rep.Rows = append(rep.Rows, row)
				fmt.Printf("fanout %-8s queries=%-2d workers=%-2d  %9.0f ups/s  p50=%6.1fus p99=%6.1fus  evals=%d skipped=%d pooled=%d\n",
					mode, q, w, row.UpdatesPerS, row.P50Us, row.P99Us, row.Evals, row.Skipped, row.Pooled)
			}
		}
	}
	base := findFanoutRow(rep.Rows, "disjoint", 8, 1)
	fast := findFanoutRow(rep.Rows, "disjoint", 8, 4)
	if base != nil && fast != nil && base.UpdatesPerS > 0 {
		rep.Speedup8q4w = fast.UpdatesPerS / base.UpdatesPerS
	}
	fmt.Printf("fanout speedup (8 queries, disjoint, 4 workers vs 1): %.2fx\n", rep.Speedup8q4w)
	return writeJSON(out, rep)
}

// fanoutCell runs one grid cell: a fresh graph and engine, q registered
// 2-hop queries, and an insert/delete stream cycling over the query
// labels.
func fanoutCell(mode string, queries, workers, updates int) (fanoutRow, error) {
	// Typed vertices: a quarter carry the label the queries constrain
	// their vertices to, the rest are bystanders — the realistic shape
	// for signature workloads, and it keeps match enumeration sparse so
	// the per-update cost is dominated by evaluation dispatch (what this
	// experiment measures) rather than result emission.
	const nVertices = 2000
	g := turboflux.NewGraph()
	for v := turboflux.VertexID(1); v <= nVertices; v++ {
		if v%4 == 0 {
			g.EnsureVertex(v, 0)
		} else {
			g.EnsureVertex(v, 1)
		}
	}
	m := turboflux.NewMultiEngine(g)
	defer m.Close() //tf:unchecked-ok bench teardown
	m.SetFanOutWorkers(workers)

	var matches int64
	for i := 0; i < queries; i++ {
		l := turboflux.Label(i)
		if mode == "shared" {
			l = 0
		}
		q := turboflux.NewQuery(3)
		q.SetLabels(0, 0)
		q.SetLabels(1, 0)
		q.SetLabels(2, 0)
		if err := q.AddEdge(0, l, 1); err != nil {
			return fanoutRow{}, err
		}
		if err := q.AddEdge(1, l, 2); err != nil {
			return fanoutRow{}, err
		}
		err := m.Register(fmt.Sprintf("q%d", i), q, turboflux.Options{
			OnMatch: func(positive bool, _ []turboflux.VertexID) { matches++ },
		})
		if err != nil {
			return fanoutRow{}, err
		}
	}

	// Deterministic LCG edge stream, generated up front so the timed loop
	// measures Apply alone: ~1/5 deletes, every update effective (inserts
	// never duplicate a live edge, deletes always hit one) so no-op
	// shortcuts don't dilute the measurement.
	live := make([]turboflux.Edge, 0, updates)
	liveSet := make(map[turboflux.Edge]struct{}, updates)
	state := uint32(12345)
	next := func(n uint32) uint32 {
		state = state*1664525 + 1013904223
		return (state >> 8) % n
	}
	stream := make([]turboflux.Update, 0, updates)
	for k := 0; k < updates; k++ {
		if k%5 == 4 && len(live) > 0 {
			i := int(next(uint32(len(live))))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			delete(liveSet, e)
			stream = append(stream, turboflux.Delete(e.From, e.Label, e.To))
			continue
		}
		l := turboflux.Label(k % queries)
		if mode == "shared" {
			l = 0
		}
		e := turboflux.Edge{Label: l}
		for {
			e.From = turboflux.VertexID(next(nVertices) + 1)
			e.To = turboflux.VertexID(next(nVertices) + 1)
			if _, dup := liveSet[e]; !dup {
				break
			}
		}
		live = append(live, e)
		liveSet[e] = struct{}{}
		stream = append(stream, turboflux.Insert(e.From, e.Label, e.To))
	}

	// Warm up on the first tenth of the stream (DCG root edges, pool
	// spin-up, allocator steady state), then time the rest. Latency is
	// sampled 1-in-8 to keep clock reads off the hot loop.
	warm := len(stream) / 10
	for _, u := range stream[:warm] {
		if _, err := m.Apply(u); err != nil {
			return fanoutRow{}, err
		}
	}
	lat := stats.NewLatency(0)
	timed := stream[warm:]
	start := time.Now()
	for i, u := range timed {
		if i%8 == 0 {
			t0 := time.Now()
			if _, err := m.Apply(u); err != nil {
				return fanoutRow{}, err
			}
			lat.Observe(time.Since(t0))
			continue
		}
		if _, err := m.Apply(u); err != nil {
			return fanoutRow{}, err
		}
	}
	wall := time.Since(start)

	fs := m.FanOutStats()
	qs := lat.Quantiles(50, 95, 99)
	return fanoutRow{
		Mode:        mode,
		Queries:     queries,
		Workers:     workers,
		Updates:     len(timed),
		NsPerOp:     float64(wall.Nanoseconds()) / float64(len(timed)),
		UpdatesPerS: float64(len(timed)) / wall.Seconds(),
		P50Us:       float64(qs[0].Nanoseconds()) / 1e3,
		P95Us:       float64(qs[1].Nanoseconds()) / 1e3,
		P99Us:       float64(qs[2].Nanoseconds()) / 1e3,
		Matches:     matches,
		Evals:       fs.Evals,
		Skipped:     fs.Skipped,
		Pooled:      fs.Pooled,
		Batches:     fs.Batches,
		PoolBusyNs:  fs.BusyNs,
	}, nil
}

func findFanoutRow(rows []fanoutRow, mode string, queries, workers int) *fanoutRow {
	for i := range rows {
		r := &rows[i]
		if r.Mode == mode && r.Queries == queries && r.Workers == workers {
			return r
		}
	}
	return nil
}

func dedupInts(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
