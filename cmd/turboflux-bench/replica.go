package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"turboflux"
	"turboflux/internal/server"
	"turboflux/internal/stats"
)

// replicaRow is one cell of the replication fan-out grid: delivery
// latency (update applied on the leader -> matching event received by a
// subscriber) for a given follower count and total subscriber count. Tier
// says where the measured subscriber lives: on the leader (followers=0)
// or on a follower replica.
type replicaRow struct {
	Followers     int     `json:"followers"`
	Subscribers   int     `json:"subscribers"`
	Tier          string  `json:"tier"`
	Samples       int     `json:"samples"`
	DeliveryP50Us float64 `json:"delivery_p50_us"`
	DeliveryP95Us float64 `json:"delivery_p95_us"`
	DeliveryP99Us float64 `json:"delivery_p99_us"`
}

// replicaReport is the BENCH_replica.json document: subscriber count vs
// delivery p99, leader-only vs 1 leader + N followers. The comparable
// leader-only (memory-mode, no WAL) number is BENCH_serve.json's
// fanout_p99_us.
type replicaReport struct {
	SamplesPerCell int          `json:"samples_per_cell"`
	Baseline       string       `json:"baseline"`
	Rows           []replicaRow `json:"rows"`
}

// runReplica benchmarks event delivery through the replication tier:
// leader-only durable serving versus one leader shipping its WAL to 1–2
// follower replicas that carry the subscriber load.
func runReplica(out string, samples int) error {
	followerGrid := []int{0, 1, 2}
	subGrid := []int{1, 8, 32}
	rep := replicaReport{
		SamplesPerCell: samples,
		Baseline:       "BENCH_serve.json fanout_p99_us (memory-mode leader, no replication)",
	}
	for _, nf := range followerGrid {
		for _, ns := range subGrid {
			row, err := replicaCell(nf, ns, samples)
			if err != nil {
				return fmt.Errorf("replica cell followers=%d subs=%d: %w", nf, ns, err)
			}
			rep.Rows = append(rep.Rows, row)
			fmt.Printf("replica: followers=%d subs=%-2d tier=%-8s p50=%.0fus p95=%.0fus p99=%.0fus\n",
				row.Followers, row.Subscribers, row.Tier,
				row.DeliveryP50Us, row.DeliveryP95Us, row.DeliveryP99Us)
		}
	}
	return writeJSON(out, rep)
}

// replicaCell measures one topology: a durable leader, nFollowers
// replicas, nSubs subscribers spread over the replica tier (or on the
// leader when there are no followers), and one writer driving matching
// updates on the leader. Each sample is apply-to-event delivery time at
// the measured subscriber.
func replicaCell(nFollowers, nSubs, samples int) (replicaRow, error) {
	const nVertices = 2000
	row := replicaRow{Followers: nFollowers, Subscribers: nSubs, Tier: "leader"}
	if nFollowers > 0 {
		row.Tier = "follower"
	}

	newDicts := func() (*turboflux.Dict, *turboflux.Dict) {
		vd := turboflux.NewDict()
		vd.Intern("P")
		return vd, turboflux.NewDict()
	}
	var boot []turboflux.Update
	for v := turboflux.VertexID(1); v <= nVertices; v++ {
		boot = append(boot, turboflux.DeclareVertex(v, 0))
	}

	type proc struct {
		srv  *server.Server
		done chan error
		dir  string
	}
	var procs []proc
	start := func(opt server.Options) (string, error) {
		srv, err := server.New(opt)
		if err != nil {
			return "", err
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			return "", err
		}
		done := make(chan error, 1)
		//tf:goroutine bench-replica-serve-loop
		go func() { done <- srv.Serve() }()
		procs = append(procs, proc{srv: srv, done: done, dir: opt.DataDir})
		return srv.Addr().String(), nil
	}
	stopAll := func() error {
		var first error
		for i := len(procs) - 1; i >= 0; i-- {
			if err := shutdownServer(procs[i].srv); err != nil && first == nil {
				first = err
			}
			if err := <-procs[i].done; err != nil && first == nil {
				first = err
			}
			os.RemoveAll(procs[i].dir) //tf:unchecked-ok bench temp dir
		}
		return first
	}
	fail := func(err error) (replicaRow, error) {
		stopAll() //tf:unchecked-ok already failing
		return replicaRow{}, err
	}

	leaderDir, err := os.MkdirTemp("", "tfbench-repl-leader")
	if err != nil {
		return replicaRow{}, err
	}
	vd, ed := newDicts()
	leaderAddr, err := start(server.Options{
		Slow:         server.PolicyBlock,
		QueueDepth:   1024,
		DataDir:      leaderDir,
		Fsync:        "none",
		VertexLabels: vd,
		EdgeLabels:   ed,
		Bootstrap:    boot,
	})
	if err != nil {
		os.RemoveAll(leaderDir) //tf:unchecked-ok already failing
		return replicaRow{}, err
	}

	admin, err := server.Dial(leaderAddr)
	if err != nil {
		return fail(err)
	}
	defer admin.Close() //tf:unchecked-ok bench teardown
	if err := admin.Register("q0", "(a:P)-[:e0]->(b:P)"); err != nil {
		return fail(err)
	}

	// Follower tier: register the same query on every replica before any
	// sampled update, so each replicated frame emits its events there.
	subTier := []string{leaderAddr}
	if nFollowers > 0 {
		subTier = subTier[:0]
		for i := 0; i < nFollowers; i++ {
			dir, err := os.MkdirTemp("", "tfbench-repl-follower")
			if err != nil {
				return fail(err)
			}
			fvd, fed := newDicts()
			addr, err := start(server.Options{
				Slow:         server.PolicyBlock,
				QueueDepth:   1024,
				DataDir:      dir,
				Fsync:        "none",
				VertexLabels: fvd,
				EdgeLabels:   fed,
				Follow:       leaderAddr,
			})
			if err != nil {
				os.RemoveAll(dir) //tf:unchecked-ok already failing
				return fail(err)
			}
			fc, err := server.Dial(addr)
			if err != nil {
				return fail(err)
			}
			regErr := fc.Register("q0", "(a:P)-[:e0]->(b:P)")
			fc.Close() //tf:unchecked-ok bench teardown
			if regErr != nil {
				return fail(regErr)
			}
			subTier = append(subTier, addr)
		}
	}

	// Subscribers, round-robin over the tier. The first one is measured;
	// the rest drain concurrently, modeling fan-out load.
	subs := make([]*server.Client, nSubs)
	var drainWG sync.WaitGroup
	for i := range subs {
		c, err := server.Dial(subTier[i%len(subTier)])
		if err != nil {
			return fail(err)
		}
		subs[i] = c
		if _, err := c.Subscribe("q0"); err != nil {
			return fail(err)
		}
		if i == 0 {
			continue // measured subscriber: drained inline below
		}
		drainWG.Add(1)
		//tf:goroutine bench-replica-drain
		go func(c *server.Client) {
			defer drainWG.Done()
			for range c.Events() {
			}
		}(c)
	}
	measured := subs[0]

	writer, err := server.Dial(leaderAddr)
	if err != nil {
		return fail(err)
	}
	defer writer.Close() //tf:unchecked-ok bench teardown

	waitSeq := func(seq uint64) error {
		for ev := range measured.Events() {
			if ev.Seq == seq {
				return nil
			}
		}
		return fmt.Errorf("measured subscriber stream ended before seq %d", seq)
	}
	lat := stats.NewLatency(0)
	for k := 0; k < samples; k++ {
		from := turboflux.VertexID(uint32(k)%nVertices + 1)
		to := turboflux.VertexID(uint32(k*7919)%nVertices + 1)
		t0 := time.Now()
		ack, err := writer.Apply(turboflux.Insert(from, 0, to))
		if err != nil {
			return fail(err)
		}
		if err := waitSeq(ack.Seq); err != nil {
			return fail(err)
		}
		lat.Observe(time.Since(t0))
		dack, err := writer.Delete(from, 0, to)
		if err != nil {
			return fail(err)
		}
		if err := waitSeq(dack.Seq); err != nil {
			return fail(err)
		}
	}

	for _, c := range subs {
		c.Close() //tf:unchecked-ok bench teardown
	}
	drainWG.Wait()
	if err := stopAll(); err != nil {
		return replicaRow{}, err
	}

	qs := lat.Quantiles(50, 95, 99)
	row.Samples = int(lat.Count())
	row.DeliveryP50Us = float64(qs[0].Nanoseconds()) / 1e3
	row.DeliveryP95Us = float64(qs[1].Nanoseconds()) / 1e3
	row.DeliveryP99Us = float64(qs[2].Nanoseconds()) / 1e3
	return row, nil
}
