package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
)

// layoutCellSpeedup is the per-cell comparison against the recorded
// pre-refactor baseline: same (mode, queries) cell, workers=1.
type layoutCellSpeedup struct {
	Mode        string  `json:"mode"`
	Queries     int     `json:"queries"`
	BaseUpdPerS float64 `json:"baseline_updates_per_s"`
	CurUpdPerS  float64 `json:"updates_per_s"`
	Speedup     float64 `json:"speedup"`
}

// layoutReport is the BENCH_layout.json document: the fanout bench grid
// restricted to workers=1, measuring raw per-update engine cost — the
// cell where the dense data-layout refactor (DESIGN.md §16) must pay,
// because there is no pool parallelism to hide per-update overhead
// behind.
type layoutReport struct {
	GOMAXPROCS int         `json:"gomaxprocs"`
	Updates    int         `json:"updates_per_cell"`
	Rows       []fanoutRow `json:"rows"`

	// BaselineFrom names the baseline file the speedups were computed
	// against (a layoutReport captured on the pre-refactor tree), empty
	// when no baseline was supplied.
	BaselineFrom string              `json:"baseline_from,omitempty"`
	Speedups     []layoutCellSpeedup `json:"speedups,omitempty"`
	// SpeedupGeomean and SpeedupMin summarize the per-cell speedups: the
	// acceptance target is geomean >= 2x at workers=1.
	SpeedupGeomean float64 `json:"speedup_geomean,omitempty"`
	SpeedupMin     float64 `json:"speedup_min,omitempty"`
}

// runLayout measures single-worker per-update throughput over the fanout
// bench grid (both label modes, sweeping registered-query count) and,
// when a baseline file is given, reports per-cell speedups against it.
// quick restricts the grid for the CI smoke job.
func runLayout(out, baselinePath string, updates int, quick bool) error {
	querySet := []int{1, 2, 4, 8, 16}
	if quick {
		querySet = []int{1, 8}
	}
	rep := layoutReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Updates: updates}
	for _, mode := range []string{"disjoint", "shared"} {
		for _, q := range querySet {
			// Best of 3 runs, same policy as -exp fanout: cells are short
			// enough that one GC pause or preemption swings a run by 30%.
			var row fanoutRow
			for i := 0; i < 3; i++ {
				r, err := fanoutCell(mode, q, 1, updates)
				if err != nil {
					return err
				}
				if i == 0 || r.UpdatesPerS > row.UpdatesPerS {
					row = r
				}
			}
			rep.Rows = append(rep.Rows, row)
			fmt.Printf("layout %-8s queries=%-2d workers=1  %9.0f ups/s  p50=%6.1fus p99=%6.1fus\n",
				mode, q, row.UpdatesPerS, row.P50Us, row.P99Us)
		}
	}

	if baselinePath != "" {
		if err := layoutCompare(&rep, baselinePath); err != nil {
			return err
		}
	}
	return writeJSON(out, rep)
}

// layoutCompare fills the speedup section of rep from a baseline report.
func layoutCompare(rep *layoutReport, baselinePath string) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("layout baseline: %w", err)
	}
	var base layoutReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("layout baseline %s: %w", baselinePath, err)
	}
	rep.BaselineFrom = baselinePath
	logSum, n := 0.0, 0
	min := math.Inf(1)
	for i := range rep.Rows {
		cur := &rep.Rows[i]
		b := findFanoutRow(base.Rows, cur.Mode, cur.Queries, cur.Workers)
		if b == nil || b.UpdatesPerS <= 0 {
			continue
		}
		sp := cur.UpdatesPerS / b.UpdatesPerS
		rep.Speedups = append(rep.Speedups, layoutCellSpeedup{
			Mode: cur.Mode, Queries: cur.Queries,
			BaseUpdPerS: b.UpdatesPerS, CurUpdPerS: cur.UpdatesPerS, Speedup: sp,
		})
		logSum += math.Log(sp)
		n++
		if sp < min {
			min = sp
		}
		fmt.Printf("layout speedup %-8s queries=%-2d  %8.0f -> %8.0f ups/s  %.2fx\n",
			cur.Mode, cur.Queries, b.UpdatesPerS, cur.UpdatesPerS, sp)
	}
	if n > 0 {
		rep.SpeedupGeomean = math.Exp(logSum / float64(n))
		rep.SpeedupMin = min
		fmt.Printf("layout speedup vs %s: geomean %.2fx, min %.2fx\n",
			baselinePath, rep.SpeedupGeomean, rep.SpeedupMin)
	}
	return nil
}
