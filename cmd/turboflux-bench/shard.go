package main

import (
	"context"
	"fmt"
	"time"

	"turboflux"
	"turboflux/internal/server"
	"turboflux/internal/shard"
)

// shardRow is one cell of the shard-count sweep: a coordinator over n
// shard servers driving the same disjoint 24-query workload through
// BATCH frames.
//
// CoordPerSec is the client-observed wall-clock update rate through the
// coordinator. AggregatePerSec is the cluster-wide ingest+eval rate:
// every shard applies the full update stream and evaluates its query
// partition against it, so the cluster processes n×updates
// ingest+eval units in the same wall-clock — the capacity metric that
// grows with shard count. On a single host all shards share the CPUs,
// so CoordPerSec is roughly flat while AggregatePerSec scales; on one
// host per shard, CoordPerSec itself approaches the aggregate curve
// because the per-shard work (dominated by evaluating 24/n two-hop
// queries per update) genuinely runs in parallel.
type shardRow struct {
	Shards          int     `json:"shards"`
	Queries         int     `json:"queries"`
	Updates         int     `json:"updates"`
	BatchSize       int     `json:"batch_size"`
	Matches         int64   `json:"matches"`
	WallMs          float64 `json:"wall_ms"`
	CoordPerSec     float64 `json:"coord_updates_per_sec"`
	AggregatePerSec float64 `json:"aggregate_updates_per_sec"`
	AggSpeedupVs1   float64 `json:"aggregate_speedup_vs_1"`
}

// shardReport is the BENCH_shard.json document.
type shardReport struct {
	QueryMix string     `json:"query_mix"`
	Note     string     `json:"note"`
	Rows     []shardRow `json:"rows"`
}

// runShard benchmarks the coordinator/router tier over 1, 2, 4 and 8
// shard servers with 24 label-disjoint two-hop queries.
func runShard(out string, updates, batchSize int) error {
	rep := shardReport{
		QueryMix: "24 label-disjoint two-hop queries (a:P)-[:eI]->(b:P)-[:fI]->(c:P), each update completing/retracting 16 matches",
		Note: "aggregate_updates_per_sec counts every shard's ingest+eval of the " +
			"full stream (shards x coord rate); all shards share this host's CPUs, " +
			"so coord_updates_per_sec stays near-flat while the aggregate scales",
	}
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		row, err := shardCell(n, updates, batchSize)
		if err != nil {
			return fmt.Errorf("shard cell shards=%d: %w", n, err)
		}
		if n == 1 {
			base = row.AggregatePerSec
		}
		row.AggSpeedupVs1 = row.AggregatePerSec / base
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("shard: shards=%d updates=%d batch=%d wall=%.0fms coord=%.0f/s aggregate=%.0f/s (%.2fx)\n",
			row.Shards, row.Updates, row.BatchSize, row.WallMs,
			row.CoordPerSec, row.AggregatePerSec, row.AggSpeedupVs1)
	}
	return writeJSON(out, rep)
}

// shardCell runs one topology: n in-process shard servers behind an
// in-process coordinator, 24 queries, `updates` matched updates in
// BATCH frames of batchSize.
func shardCell(nShards, updates, batchSize int) (shardRow, error) {
	const (
		nQueries  = 24
		fanLeaves = 16
	)
	row := shardRow{Shards: nShards, Queries: nQueries, Updates: updates, BatchSize: batchSize}

	// Identical dictionaries everywhere: P=0; e0..e23 then f0..f23.
	newDicts := func() (*turboflux.Dict, *turboflux.Dict) {
		vd, ed := turboflux.NewDict(), turboflux.NewDict()
		vd.Intern("P")
		for i := 0; i < nQueries; i++ {
			ed.Intern(fmt.Sprintf("e%d", i))
		}
		for i := 0; i < nQueries; i++ {
			ed.Intern(fmt.Sprintf("f%d", i))
		}
		return vd, ed
	}
	elabel := func(i int) turboflux.Label { return turboflux.Label(i) }
	flabel := func(i int) turboflux.Label { return turboflux.Label(nQueries + i) }
	srcV := func(i int) turboflux.VertexID { return turboflux.VertexID(1 + i) }
	hubV := func(i int) turboflux.VertexID { return turboflux.VertexID(100 + i) }
	leafV := func(i, k int) turboflux.VertexID { return turboflux.VertexID(1000 + i*fanLeaves + k) }

	// Every shard bootstraps the same graph: per query i, a fan
	// hub_i -fI-> leaf_{i,0..15}, so each benchmark edge a_i -eI-> hub_i
	// completes (or retracts) 16 two-hop matches.
	var boot []turboflux.Update
	for i := 0; i < nQueries; i++ {
		boot = append(boot, turboflux.DeclareVertex(srcV(i), 0), turboflux.DeclareVertex(hubV(i), 0))
		for k := 0; k < fanLeaves; k++ {
			boot = append(boot, turboflux.DeclareVertex(leafV(i, k), 0))
		}
	}
	for i := 0; i < nQueries; i++ {
		for k := 0; k < fanLeaves; k++ {
			boot = append(boot, turboflux.Insert(hubV(i), flabel(i), leafV(i, k)))
		}
	}

	type proc struct {
		srv  *server.Server
		done chan error
	}
	var procs []proc
	var addrs []string
	for s := 0; s < nShards; s++ {
		vd, ed := newDicts()
		srv, err := server.New(server.Options{
			Slow:         server.PolicyBlock,
			QueueDepth:   1024,
			VertexLabels: vd,
			EdgeLabels:   ed,
			Bootstrap:    boot,
		})
		if err == nil {
			err = srv.Listen("127.0.0.1:0")
		}
		if err != nil {
			for _, p := range procs {
				shutdownServer(p.srv) //tf:unchecked-ok already failing
			}
			return shardRow{}, err
		}
		done := make(chan error, 1)
		//tf:goroutine bench-shard-serve-loop
		go func() { done <- srv.Serve() }()
		procs = append(procs, proc{srv: srv, done: done})
		addrs = append(addrs, srv.Addr().String())
	}
	stopAll := func() error {
		var first error
		for i := len(procs) - 1; i >= 0; i-- {
			if err := shutdownServer(procs[i].srv); err != nil && first == nil {
				first = err
			}
			if err := <-procs[i].done; err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	fail := func(err error) (shardRow, error) {
		stopAll() //tf:unchecked-ok already failing
		return shardRow{}, err
	}

	vd, ed := newDicts()
	co, err := shard.New(shard.Options{Shards: addrs, VertexLabels: vd, EdgeLabels: ed})
	if err != nil {
		return fail(err)
	}
	if err := co.Listen("127.0.0.1:0"); err != nil {
		return fail(err)
	}
	coDone := make(chan error, 1)
	//tf:goroutine bench-shard-coord-loop
	go func() { coDone <- co.Serve() }()
	stopCo := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := co.Shutdown(ctx)
		if serveErr := <-coDone; serveErr != nil && err == nil {
			err = serveErr
		}
		return err
	}
	failCo := func(err error) (shardRow, error) {
		stopCo()  //tf:unchecked-ok already failing
		stopAll() //tf:unchecked-ok already failing
		return shardRow{}, err
	}

	c, err := server.Dial(co.Addr().String())
	if err != nil {
		return failCo(err)
	}
	defer c.Close() //tf:unchecked-ok bench teardown
	for i := 0; i < nQueries; i++ {
		pattern := fmt.Sprintf("(a:P)-[:e%d]->(b:P)-[:f%d]->(c:P)", i, i)
		if err := c.Register(fmt.Sprintf("q%d", i), pattern); err != nil {
			return failCo(err)
		}
	}

	// The measured stream: round-robin inserts of a_i -eI-> hub_i, each
	// alternating round deleting them again so the graph stays bounded.
	ups := make([]turboflux.Update, updates)
	for k := range ups {
		i := k % nQueries
		if (k/nQueries)%2 == 0 {
			ups[k] = turboflux.Insert(srcV(i), elabel(i), hubV(i))
		} else {
			ups[k] = turboflux.Delete(srcV(i), elabel(i), hubV(i))
		}
	}

	t0 := time.Now()
	for off := 0; off < len(ups); off += batchSize {
		end := off + batchSize
		if end > len(ups) {
			end = len(ups)
		}
		ack, err := c.BatchBinary(ups[off:end])
		if err != nil {
			return failCo(err)
		}
		row.Matches += ack.Total
	}
	wall := time.Since(t0)

	if err := stopCo(); err != nil {
		return shardRow{}, err
	}
	if err := stopAll(); err != nil {
		return shardRow{}, err
	}

	row.WallMs = float64(wall.Nanoseconds()) / 1e6
	row.CoordPerSec = float64(updates) / wall.Seconds()
	row.AggregatePerSec = row.CoordPerSec * float64(nShards)
	return row, nil
}
