// Command turboflux-bench regenerates the paper's tables and figures
// (DESIGN.md §5 maps experiment ids to paper artifacts).
//
// Usage:
//
//	turboflux-bench -exp fig6 [-users 1500] [-queries 8] [-timeout 5s]
//	turboflux-bench -exp all
//	turboflux-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"turboflux/internal/harness"
)

func main() {
	cfg := harness.DefaultConfig(os.Stdout)
	exp := flag.String("exp", "", "experiment id (see -list)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	durOut := flag.String("durability-out", "BENCH_durability.json", "report path for -exp durability")
	durRecords := flag.Int("durability-records", 200000, "WAL record count for -exp durability")
	serveOut := flag.String("serve-out", "BENCH_serve.json", "report path for -exp serve")
	serveClients := flag.Int("serve-clients", 4, "concurrent writer clients for -exp serve")
	serveQueries := flag.Int("serve-queries", 4, "registered queries for -exp serve")
	serveUpdates := flag.Int("serve-updates", 5000, "updates per client for -exp serve")
	fanoutOut := flag.String("fanout-out", "BENCH_fanout.json", "report path for -exp fanout")
	fanoutUpdates := flag.Int("fanout-updates", 100000, "updates per grid cell for -exp fanout")
	layoutOut := flag.String("layout-out", "BENCH_layout.json", "report path for -exp layout")
	layoutUpdates := flag.Int("layout-updates", 100000, "updates per grid cell for -exp layout")
	layoutBaseline := flag.String("layout-baseline", "", "baseline layout report to compute speedups against for -exp layout")
	layoutQuick := flag.Bool("layout-quick", false, "reduced grid for -exp layout (CI smoke)")
	batchOut := flag.String("batch-out", "BENCH_batch.json", "report path for -exp batch")
	batchUpdates := flag.Int("batch-updates", 50000, "updates per grid cell for -exp batch")
	batchRecords := flag.Int("batch-records", 200000, "WAL record count for the -exp batch recovery row")
	replicaOut := flag.String("replica-out", "BENCH_replica.json", "report path for -exp replica")
	replicaSamples := flag.Int("replica-samples", 500, "delivery samples per grid cell for -exp replica")
	shardOut := flag.String("shard-out", "BENCH_shard.json", "report path for -exp shard")
	shardUpdates := flag.Int("shard-updates", 24000, "updates per shard-count cell for -exp shard")
	shardBatch := flag.Int("shard-batch", 240, "BATCH frame size for -exp shard")
	mqoOut := flag.String("mqo-out", "BENCH_mqo.json", "report path for -exp mqo")
	mqoUpdates := flag.Int("mqo-updates", 20000, "updates per grid cell for -exp mqo")
	mqoQuick := flag.Bool("mqo-quick", false, "reduced grid for -exp mqo (CI smoke)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment to this path")
	flag.IntVar(&cfg.Users, "users", cfg.Users, "LSBench scale factor (#users)")
	flag.IntVar(&cfg.Hosts, "hosts", cfg.Hosts, "Netflow host count")
	flag.IntVar(&cfg.Triples, "triples", cfg.Triples, "Netflow triple count")
	flag.IntVar(&cfg.QueriesPerSet, "queries", cfg.QueriesPerSet, "queries per set (paper: 100)")
	flag.DurationVar(&cfg.Timeout, "timeout", cfg.Timeout, "per-query timeout (paper: 2h)")
	flag.Int64Var(&cfg.SizeCap, "sizecap", cfg.SizeCap, "per-query intermediate-size cap (bytes)")
	flag.Int64Var(&cfg.WorkBudget, "work", cfg.WorkBudget, "per-update work budget inside engines")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.BoolVar(&cfg.Scatter, "scatter", false, "print per-query scatter rows (fig6/fig7)")
	csvDir := flag.String("csv", "", "also write per-experiment CSV files into this directory")
	flag.Parse()
	if *csvDir != "" {
		cfg.CSV = harness.NewCSVSink(*csvDir)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "turboflux-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "turboflux-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		fmt.Println(strings.Join(harness.Experiments(), "\n"))
		fmt.Println("durability")
		fmt.Println("serve")
		fmt.Println("fanout")
		fmt.Println("layout")
		fmt.Println("batch")
		fmt.Println("replica")
		fmt.Println("shard")
		fmt.Println("mqo")
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "turboflux-bench: -exp is required (try -list)")
		os.Exit(2)
	}
	if *exp == "durability" {
		start := time.Now()
		if err := runDurability(*durOut, *durRecords); err != nil {
			fmt.Fprintln(os.Stderr, "turboflux-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "\n[durability completed in %s]\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *exp == "serve" {
		start := time.Now()
		if err := runServe(*serveOut, *serveClients, *serveQueries, *serveUpdates); err != nil {
			fmt.Fprintln(os.Stderr, "turboflux-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "\n[serve completed in %s]\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *exp == "fanout" {
		start := time.Now()
		if err := runFanout(*fanoutOut, *fanoutUpdates); err != nil {
			fmt.Fprintln(os.Stderr, "turboflux-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "\n[fanout completed in %s]\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *exp == "layout" {
		start := time.Now()
		if err := runLayout(*layoutOut, *layoutBaseline, *layoutUpdates, *layoutQuick); err != nil {
			fmt.Fprintln(os.Stderr, "turboflux-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "\n[layout completed in %s]\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *exp == "batch" {
		start := time.Now()
		if err := runBatch(*batchOut, *batchUpdates, *batchRecords); err != nil {
			fmt.Fprintln(os.Stderr, "turboflux-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "\n[batch completed in %s]\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *exp == "replica" {
		start := time.Now()
		if err := runReplica(*replicaOut, *replicaSamples); err != nil {
			fmt.Fprintln(os.Stderr, "turboflux-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "\n[replica completed in %s]\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *exp == "shard" {
		start := time.Now()
		if err := runShard(*shardOut, *shardUpdates, *shardBatch); err != nil {
			fmt.Fprintln(os.Stderr, "turboflux-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "\n[shard completed in %s]\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if *exp == "mqo" {
		start := time.Now()
		if err := runMQO(*mqoOut, *mqoUpdates, *mqoQuick); err != nil {
			fmt.Fprintln(os.Stderr, "turboflux-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "\n[mqo completed in %s]\n", time.Since(start).Round(time.Millisecond))
		return
	}
	start := time.Now()
	if err := harness.Run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "turboflux-bench:", err)
		os.Exit(1)
	}
	if cfg.CSV != nil {
		if err := cfg.CSV.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "turboflux-bench: writing csv:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "[csv written to %s]\n", *csvDir)
	}
	fmt.Fprintf(os.Stdout, "\n[%s completed in %s]\n", *exp, time.Since(start).Round(time.Millisecond))
}
