// Command turboflux-serve runs the TurboFlux network server: a concurrent
// TCP front end over one shared MultiEngine. Clients register continuous
// queries, stream graph updates and subscribe to per-query match streams
// over a line protocol (see internal/server for the full specification).
//
// Usage:
//
//	turboflux-serve -addr :7687 [-data-dir state/] [-fsync interval]
//	               [-queue 256] [-slow block|drop|evict]
//	               [-graph g0.txt] [-numeric-labels]
//	               [-follow leader:7687]
//
// With -data-dir every accepted update is journaled to a checksummed
// write-ahead log before it is evaluated or acknowledged, and a restarted
// server recovers the graph from disk (queries are not journaled; clients
// re-register after a restart). SIGINT/SIGTERM trigger a graceful
// shutdown: the listener closes, in-flight requests finish, subscriber
// queues flush, and the store closes with no torn tail.
//
// With -follow the server starts as a read-only follower replicating the
// leader's write-ahead log (requires -data-dir): it catches up from a
// snapshot and/or log tail, journals every replicated update into its own
// WAL, serves queries and subscriptions locally, and rejects writes until
// a client sends PROMOTE.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"turboflux"
	"turboflux/internal/server"
)

func main() {
	addr := flag.String("addr", ":7687", "TCP listen address")
	dataDir := flag.String("data-dir", "", "durable mode: journal updates and recover state from this directory")
	fsync := flag.String("fsync", "interval", "durable-mode fsync policy: always, interval or none")
	queue := flag.Int("queue", 256, "per-subscriber event queue capacity")
	slow := flag.String("slow", "block", "slow-consumer policy: block, drop or evict")
	graphPath := flag.String("graph", "", "optional initial graph file (text stream format; seeds a fresh store)")
	numeric := flag.Bool("numeric-labels", false, "pre-intern labels 0..255 so numeric label names map to themselves")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout before connections are force-closed")
	workers := flag.Int("fanout-workers", 0, "multi-query fan-out worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	follow := flag.String("follow", "", "follower mode: replicate from the leader at this address (requires -data-dir)")
	flag.Parse()

	if err := run(*addr, *dataDir, *fsync, *graphPath, *slow, *follow, *queue, *workers, *numeric, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "turboflux-serve:", err)
		os.Exit(1)
	}
}

func run(addr, dataDir, fsync, graphPath, slow, follow string, queue, workers int, numeric bool, drain time.Duration) error {
	policy, err := server.ParseSlowPolicy(slow)
	if err != nil {
		return err
	}
	opt := server.Options{
		QueueDepth:    queue,
		Slow:          policy,
		DataDir:       dataDir,
		Fsync:         fsync,
		FanOutWorkers: workers,
		Follow:        follow,
	}
	if numeric {
		opt.VertexLabels = numericDict()
		opt.EdgeLabels = numericDict()
	}
	if graphPath != "" {
		boot, err := loadUpdates(graphPath)
		if err != nil {
			return fmt.Errorf("loading graph: %w", err)
		}
		opt.Bootstrap = boot
	}

	srv, err := server.New(opt)
	if err != nil {
		return err
	}
	if dataDir != "" {
		rec := srv.Recovery()
		if rec.Fresh {
			fmt.Printf("# durable: fresh store in %s (fsync=%s)\n", dataDir, fsync)
		} else {
			fmt.Printf("# durable: recovered snapshot@%d + %d replayed updates (%d torn bytes dropped)\n",
				rec.SnapshotLSN, rec.Replayed, rec.TruncatedBytes)
		}
	}
	if err := srv.Listen(addr); err != nil {
		shutdownErr := shutdown(srv, drain)
		if shutdownErr != nil {
			fmt.Fprintln(os.Stderr, "turboflux-serve: shutdown:", shutdownErr)
		}
		return err
	}
	if follow != "" {
		fmt.Printf("# following leader at %s\n", follow)
	}
	fmt.Printf("# serving on %s (policy=%s queue=%d)\n", srv.Addr(), policy, queue)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	//tf:goroutine serve-accept-loop
	go func() { serveErr <- srv.Serve() }()

	select {
	case err := <-serveErr:
		shutdownErr := shutdown(srv, drain)
		if err != nil {
			return err
		}
		return shutdownErr
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "turboflux-serve: signal received, shutting down")
		if err := shutdown(srv, drain); err != nil {
			return err
		}
		if err := <-serveErr; err != nil {
			return err
		}
		fmt.Println("# shut down cleanly")
		return nil
	}
}

func shutdown(srv *server.Server, drain time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	return srv.Shutdown(ctx)
}

// numericDict interns "0".."255" so Label(i) renders and parses as "i",
// matching the numeric label convention of the data file formats.
func numericDict() *turboflux.Dict {
	d := turboflux.NewDict()
	for i := 0; i < 256; i++ {
		d.Intern(strconv.Itoa(i))
	}
	return d
}

func loadUpdates(path string) ([]turboflux.Update, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //tf:unchecked-ok read-only file
	return turboflux.DecodeStream(f)
}
