// Command turboflux runs continuous subgraph matching over stream files.
//
// It loads an initial graph and a query from text files, then replays an
// update stream, printing each positive (+) and negative (-) match as it
// is reported.
//
// Usage:
//
//	turboflux -graph g0.txt -query q.txt -stream updates.txt [-iso] [-quiet]
//	turboflux -data-dir state/ -query q.txt -stream updates.txt [-fsync always|interval|none]
//
// With -data-dir the engine runs in durable mode: every update is
// journaled to a checksummed write-ahead log before evaluation, and on
// restart the directory is recovered (newest snapshot + log tail) instead
// of reloading -graph. The -graph file seeds a fresh directory only.
//
// File formats (see internal/stream): the graph and stream files hold one
// record per line — "v <id> [<label>,...]" declares a vertex, "i <from>
// <label> <to>" inserts an edge, "d <from> <label> <to>" deletes one. The
// query file uses the same records, where vertex ids are query vertex ids
// 0..n-1 (deletions are invalid in queries).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"sync/atomic"
	"syscall"

	"turboflux"
	"turboflux/internal/graph"
	"turboflux/internal/stream"
)

func main() {
	graphPath := flag.String("graph", "", "initial graph file (required)")
	queryPath := flag.String("query", "", "query file (this or -pattern required)")
	pattern := flag.String("pattern", "", "Cypher-like pattern, e.g. '(a:1)-[:0]->(b)' (labels are numeric names)")
	streamPath := flag.String("stream", "", "update stream file (required)")
	iso := flag.Bool("iso", false, "use subgraph isomorphism semantics")
	quiet := flag.Bool("quiet", false, "suppress per-match output, print totals only")
	initial := flag.Bool("initial", false, "also report matches of the initial graph")
	explain := flag.Bool("explain", false, "print the execution plan before streaming")
	dataDir := flag.String("data-dir", "", "durable mode: journal updates and recover state from this directory")
	fsync := flag.String("fsync", "interval", "durable-mode fsync policy: always, interval or none")
	flag.Parse()
	if (*graphPath == "" && *dataDir == "") || (*queryPath == "" && *pattern == "") || *streamPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*graphPath, *queryPath, *pattern, *streamPath, *dataDir, *fsync, *iso, *quiet, *initial, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "turboflux:", err)
		os.Exit(1)
	}
}

// streamEngine is the part of the engine surface the streaming loop needs;
// *turboflux.Engine and *turboflux.DurableEngine both provide it.
type streamEngine interface {
	InitialMatches() int64
	ApplyBatch([]turboflux.Update) (int64, error)
	Explain() string
	Stats() turboflux.Stats
}

func run(graphPath, queryPath, pattern, streamPath, dataDir, fsync string, iso, quiet, initial, explain bool) error {
	// Catch SIGINT/SIGTERM for the whole run, so a durable store opened
	// later is always closed through the deferred Compact+Close and the
	// WAL ends at a record boundary.
	var interrupted atomic.Bool
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	// Stop then close so the watcher goroutine exits with the run instead
	// of leaking: after Stop the runtime no longer sends on sigCh, so
	// closing it is safe and unblocks the receive.
	defer func() {
		signal.Stop(sigCh)
		close(sigCh)
	}()
	//tf:goroutine signal-watcher
	go func() {
		if sig, ok := <-sigCh; ok {
			interrupted.Store(true)
			fmt.Fprintf(os.Stderr, "turboflux: %v: finishing current chunk, closing store\n", sig)
		}
	}()

	var q *turboflux.Query
	var err error
	if pattern != "" {
		// Pattern label names must be the numeric labels used in the data
		// files; numericDict interns "12" as Label(12).
		q, _, err = turboflux.ParseQuery(pattern, numericDict(), numericDict())
		if err != nil {
			return fmt.Errorf("parsing pattern: %w", err)
		}
	} else {
		q, err = loadQuery(queryPath)
		if err != nil {
			return fmt.Errorf("loading query: %w", err)
		}
	}
	ups, err := loadUpdates(streamPath)
	if err != nil {
		return fmt.Errorf("loading stream: %w", err)
	}

	opt := turboflux.Options{}
	if iso {
		opt.Semantics = turboflux.Isomorphism
	}
	if !quiet {
		opt.OnMatch = printMatch
	}
	if interrupted.Load() {
		return fmt.Errorf("interrupted before the engine was opened")
	}

	var eng streamEngine
	if dataDir != "" {
		deng, err := openDurable(dataDir, graphPath, q, fsync, opt)
		if err != nil {
			return err
		}
		defer func() {
			if err := deng.Compact(); err != nil {
				fmt.Fprintln(os.Stderr, "turboflux: compacting:", err)
			}
			if err := deng.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "turboflux: closing store:", err)
			}
		}()
		eng = deng
	} else {
		g0, err := loadGraph(graphPath)
		if err != nil {
			return fmt.Errorf("loading graph: %w", err)
		}
		meng, err := turboflux.NewEngine(g0, q, opt)
		if err != nil {
			return err
		}
		eng = meng
	}

	if explain {
		fmt.Println(eng.Explain())
	}
	if initial {
		n := eng.InitialMatches()
		fmt.Printf("# initial matches: %d\n", n)
	}
	applied, err := applyInterruptible(eng, ups, &interrupted)
	if err != nil {
		return err
	}
	st := eng.Stats()
	fmt.Printf("# stream: %d updates, %d positive, %d negative, DCG %d edges\n",
		applied, st.PositiveMatches, st.NegativeMatches, st.DCGEdges)
	return nil
}

// applyInterruptible replays ups in batched chunks (each journaled as one
// log write and evaluated through the batch pipeline), stopping cleanly
// at a chunk boundary once interrupted is set so the deferred
// Compact+Close still runs and a durable store's write-ahead log is
// closed without a torn tail.
func applyInterruptible(eng streamEngine, ups []turboflux.Update, interrupted *atomic.Bool) (int, error) {
	applied := 0
	for _, chunk := range stream.Batches(ups, 1024) {
		if interrupted.Load() {
			fmt.Fprintf(os.Stderr, "turboflux: interrupted after %d/%d updates\n", applied, len(ups))
			break
		}
		if _, err := eng.ApplyBatch(chunk); err != nil {
			return applied, err
		}
		applied += len(chunk)
	}
	return applied, nil
}

// openDurable opens the durable engine, seeding a fresh directory from
// the -graph file (when given) and reporting what recovery found.
func openDurable(dataDir, graphPath string, q *turboflux.Query, fsync string, opt turboflux.Options) (*turboflux.DurableEngine, error) {
	dopt := turboflux.DurableOptions{Options: opt, Fsync: fsync}
	if graphPath != "" {
		boot, err := loadGraphUpdates(graphPath)
		if err != nil {
			return nil, fmt.Errorf("loading graph: %w", err)
		}
		dopt.Bootstrap = boot
	}
	deng, err := turboflux.OpenDurable(dataDir, q, dopt)
	if err != nil {
		return nil, err
	}
	rec := deng.Recovery()
	switch {
	case rec.Fresh:
		fmt.Printf("# durable: fresh store in %s (fsync=%s)\n", dataDir, fsync)
	default:
		fmt.Printf("# durable: recovered snapshot@%d + %d replayed updates (%d torn bytes dropped)\n",
			rec.SnapshotLSN, rec.Replayed, rec.TruncatedBytes)
	}
	return deng, nil
}

func printMatch(positive bool, m []turboflux.VertexID) {
	sign := byte('+')
	if !positive {
		sign = '-'
	}
	fmt.Printf("%c ", sign)
	for u, v := range m {
		if u > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("u%d=%d", u, v)
	}
	fmt.Println()
}

// loadGraph reads a graph file in either the text stream format or the
// compact binary format (sniffed by the "TFG1" magic).
func loadGraph(path string) (*turboflux.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //tf:unchecked-ok read-only file
	br := bufio.NewReader(f)
	if magic, err := br.Peek(4); err == nil && string(magic) == "TFG1" {
		return graph.ReadBinary(br)
	}
	ups, err := turboflux.DecodeStream(br)
	if err != nil {
		return nil, err
	}
	g := turboflux.NewGraph()
	for _, u := range ups {
		u.Apply(g)
	}
	return g, nil
}

// loadGraphUpdates reads a graph file as a bootstrap update history for
// durable mode. Text files decode directly; binary snapshots are expanded
// into vertex declarations and insertions in deterministic (sorted) order
// so the journaled history is reproducible.
func loadGraphUpdates(path string) ([]turboflux.Update, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //tf:unchecked-ok read-only file
	br := bufio.NewReader(f)
	if magic, err := br.Peek(4); err == nil && string(magic) == "TFG1" {
		g, err := graph.ReadBinary(br)
		if err != nil {
			return nil, err
		}
		return graphToUpdates(g), nil
	}
	return turboflux.DecodeStream(br)
}

func graphToUpdates(g *turboflux.Graph) []turboflux.Update {
	var verts []turboflux.VertexID
	g.ForEachVertex(func(v turboflux.VertexID) { verts = append(verts, v) })
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	ups := make([]turboflux.Update, 0, len(verts)+g.NumEdges())
	for _, v := range verts {
		ups = append(ups, turboflux.DeclareVertex(v, g.Labels(v)...))
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].Label != edges[j].Label {
			return edges[i].Label < edges[j].Label
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		ups = append(ups, turboflux.Insert(e.From, e.Label, e.To))
	}
	return ups
}

func loadQuery(path string) (*turboflux.Query, error) {
	ups, err := loadUpdates(path)
	if err != nil {
		return nil, err
	}
	maxV := turboflux.VertexID(0)
	for _, u := range ups {
		switch u.Op {
		case stream.OpVertex:
			if u.Vertex > maxV {
				maxV = u.Vertex
			}
		case stream.OpInsert:
			if u.Edge.From > maxV {
				maxV = u.Edge.From
			}
			if u.Edge.To > maxV {
				maxV = u.Edge.To
			}
		case stream.OpDelete:
			return nil, fmt.Errorf("query file must not contain deletions")
		}
	}
	q := turboflux.NewQuery(int(maxV) + 1)
	for _, u := range ups {
		switch u.Op {
		case stream.OpVertex:
			q.SetLabels(u.Vertex, u.Labels...)
		case stream.OpInsert:
			if err := q.AddEdge(u.Edge.From, u.Edge.Label, u.Edge.To); err != nil {
				return nil, err
			}
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// numericDict interns decimal strings so that pattern label "12" resolves
// to Label(12), matching the numeric labels of the data files.
func numericDict() *turboflux.Dict {
	d := turboflux.NewDict()
	for i := 0; i < 256; i++ {
		d.Intern(fmt.Sprintf("%d", i))
	}
	return d
}

func loadUpdates(path string) ([]turboflux.Update, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //tf:unchecked-ok read-only file
	return turboflux.DecodeStream(f)
}
