// Command turboflux-vet runs the TurboFlux invariant analyzers over the
// repository: oracle-isolation, dcg-encapsulation, deterministic-emission,
// eval-readonly, hotpath-alloc and unchecked-error (see DESIGN.md,
// "Enforced invariants").
//
// Usage:
//
//	turboflux-vet [-C dir] [-json] [packages]
//
// Packages use go-tool patterns relative to dir (default "."): "./...",
// "./internal/core". With no patterns, "./..." is assumed. Exit status is
// 0 when the tree is clean, 1 when findings were reported, 2 when the
// analysis could not run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"turboflux/internal/analysis"
	"turboflux/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// report is the JSON document printed under -json.
type report struct {
	Findings []finding `json:"findings"`
	Count    int       `json:"count"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("turboflux-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	dir := fs.String("C", ".", "run as if started in this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	diags, err := analysis.Run(*dir, fs.Args(), analyzers.All())
	if err != nil {
		fmt.Fprintf(stderr, "turboflux-vet: %v\n", err)
		return 2
	}
	rep := report{Findings: make([]finding, 0, len(diags)), Count: len(diags)}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, finding{
			Analyzer: d.Analyzer,
			File:     displayPath(*dir, d.Position.Filename),
			Line:     d.Position.Line,
			Col:      d.Position.Column,
			Message:  d.Message,
		})
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "turboflux-vet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range rep.Findings {
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", f.File, f.Line, f.Analyzer, f.Message)
		}
	}
	if rep.Count > 0 {
		return 1
	}
	return 0
}

// displayPath renders filename relative to dir when possible.
func displayPath(dir, filename string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(abs, filename)
	if err != nil || filepath.IsAbs(rel) {
		return filename
	}
	return filepath.ToSlash(rel)
}
