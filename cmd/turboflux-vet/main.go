// Command turboflux-vet runs the TurboFlux invariant analyzers over the
// repository: the data-flow invariants (oracle-isolation,
// dcg-encapsulation, deterministic-emission, eval-readonly,
// hotpath-alloc, unchecked-error) and the concurrency contracts
// (actor-confinement, goroutine-lifecycle, channel-discipline,
// lock-scope). See DESIGN.md, "Enforced invariants" and "Concurrency
// contracts".
//
// Usage:
//
//	turboflux-vet [-C dir] [-json] [-only names] [-skip names] [packages]
//
// Packages use go-tool patterns relative to dir (default "."): "./...",
// "./internal/core". With no patterns, "./..." is assumed. -only and
// -skip take comma-separated analyzer names. A summary table always goes
// to stderr. Every finding carries a severity: "error" findings are
// contract violations, "warn" findings (hotpath-alloc) are advisory.
// Exit status is 0 when no error-severity findings exist, 1 when they
// do, 2 when the analysis could not run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"

	"turboflux/internal/analysis"
	"turboflux/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// report is the JSON document printed under -json.
type report struct {
	Findings []finding `json:"findings"`
	Count    int       `json:"count"`
	Errors   int       `json:"errors"`
	Warnings int       `json:"warnings"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("turboflux-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	dir := fs.String("C", ".", "run as if started in this directory")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzer names to skip")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	selected, err := analysis.SelectAnalyzers(analyzers.All(), *only, *skip)
	if err != nil {
		fmt.Fprintf(stderr, "turboflux-vet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(*dir, fs.Args(), selected)
	if err != nil {
		fmt.Fprintf(stderr, "turboflux-vet: %v\n", err)
		return 2
	}
	rep := report{Findings: make([]finding, 0, len(diags)), Count: len(diags)}
	for _, d := range diags {
		rep.Findings = append(rep.Findings, finding{
			Analyzer: d.Analyzer,
			Severity: string(d.Severity),
			File:     displayPath(*dir, d.Position.Filename),
			Line:     d.Position.Line,
			Col:      d.Position.Column,
			Message:  d.Message,
		})
		if d.Severity == analysis.SeverityWarn {
			rep.Warnings++
		} else {
			rep.Errors++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "turboflux-vet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range rep.Findings {
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", f.File, f.Line, f.Analyzer, f.Message)
		}
	}
	writeSummary(stderr, selected, diags, rep)
	if rep.Errors > 0 {
		return 1
	}
	return 0
}

// writeSummary renders the per-analyzer summary table. It goes to stderr
// so it composes with -json on stdout; CI appends it to the step summary.
func writeSummary(w io.Writer, selected []*analysis.Analyzer, diags []analysis.Diagnostic, rep report) {
	fmt.Fprintf(w, "turboflux-vet: %d analyzers, %d findings (%d errors, %d warnings)\n",
		len(selected), rep.Count, rep.Errors, rep.Warnings)
	counts := make(map[string]int, len(selected))
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  analyzer\tseverity\tfindings\n")
	for _, az := range selected {
		sev := az.Severity
		if sev == "" {
			sev = analysis.SeverityError
		}
		fmt.Fprintf(tw, "  %s\t%s\t%d\n", az.Name, sev, counts[az.Name])
	}
	tw.Flush()
}

// displayPath renders filename relative to dir when possible.
func displayPath(dir, filename string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(abs, filename)
	if err != nil || filepath.IsAbs(rel) {
		return filename
	}
	return filepath.ToSlash(rel)
}
