package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// fixture returns the path of one analyzer fixture module.
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "analysis", "analyzers", "testdata", "src", name)
}

func TestCleanTreeExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-C", fixture("clean"), "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d on clean fixture, want 0; stderr: %s", code, errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean fixture printed findings: %q", out.String())
	}
}

func TestFindingsExitOne(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-C", fixture("oracle"), "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on oracle fixture, want 1; stderr: %s", code, errOut.String())
	}
	want := "internal/core/engine.go:7: [oracle-isolation]"
	if !strings.Contains(out.String(), want) {
		t.Errorf("output missing %q:\n%s", want, out.String())
	}
}

func TestJSONShape(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "-C", fixture("encap"), "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on encap fixture, want 1; stderr: %s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Count != 5 || len(rep.Findings) != 5 {
		t.Fatalf("encap fixture: count=%d findings=%d, want 5/5", rep.Count, len(rep.Findings))
	}
	f := rep.Findings[0]
	if f.Analyzer != "dcg-encapsulation" || f.File != "internal/core/engine.go" || f.Line != 10 || f.Col == 0 || f.Message == "" {
		t.Errorf("first finding malformed: %+v", f)
	}
}

// TestAnnotationSuppression checks end to end that //tf: directives silence
// the analyzers: the hotpath fixture contains both flagged and suppressed
// allocation sites, and only the flagged ones must surface. hotpath-alloc
// findings are warnings, so the exit status stays 0.
func TestAnnotationSuppression(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "-C", fixture("hotpath"), "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d on hotpath fixture, want 0 (warn-only); stderr: %s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	entryPoint := false
	for _, f := range rep.Findings {
		if f.Line == 49 {
			t.Errorf("//tf:alloc-ok site was still reported: %+v", f)
		}
		if f.Line == 54 {
			t.Errorf("unannotated (cold) function was reported: %+v", f)
		}
		if f.Severity != "warn" {
			t.Errorf("hotpath-alloc finding has severity %q, want warn: %+v", f.Severity, f)
		}
		if strings.Contains(f.Message, "ApplyBatch") {
			entryPoint = true
		}
	}
	if !entryPoint {
		t.Error("implicit ApplyBatch entry point produced no finding")
	}
	if len(rep.Findings) != 4 {
		t.Errorf("hotpath fixture reported %d findings, want 4: %+v", len(rep.Findings), rep.Findings)
	}
	if rep.Errors != 0 || rep.Warnings != 4 {
		t.Errorf("errors=%d warnings=%d, want 0/4", rep.Errors, rep.Warnings)
	}
}

// TestSeverityGate checks that error-severity findings (and only those)
// fail the run: the lockscope fixture has error findings, so -skip of the
// offending analyzer flips the exit status.
func TestSeverityGate(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "-C", fixture("lockscope"), "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on lockscope fixture, want 1; stderr: %s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 {
		t.Fatalf("lockscope fixture reported no error-severity findings: %+v", rep)
	}
	for _, f := range rep.Findings {
		if f.Analyzer == "lock-scope" && f.Severity != "error" {
			t.Errorf("lock-scope finding has severity %q, want error", f.Severity)
		}
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-skip", "lock-scope", "-C", fixture("lockscope"), "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d with -skip lock-scope, want 0; stdout: %s", code, out.String())
	}
}

// TestOnlyFlag restricts the run to one analyzer.
func TestOnlyFlag(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "-only", "goroutine-lifecycle", "-C", fixture("goroutine"), "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("-only goroutine-lifecycle found nothing on the goroutine fixture")
	}
	for _, f := range rep.Findings {
		if f.Analyzer != "goroutine-lifecycle" {
			t.Errorf("-only leaked a %s finding: %+v", f.Analyzer, f)
		}
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "no-such-analyzer", "-C", fixture("clean"), "./..."}, &out, &errOut); code != 2 {
		t.Errorf("exit %d on unknown analyzer name, want 2", code)
	}
	if !strings.Contains(errOut.String(), "no-such-analyzer") {
		t.Errorf("stderr does not name the unknown analyzer: %s", errOut.String())
	}
}

// TestSummaryTable checks the always-on stderr summary: headline counts
// plus one row per analyzer that ran.
func TestSummaryTable(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "-C", fixture("chandisc"), "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on chandisc fixture, want 1", code)
	}
	summary := errOut.String()
	for _, want := range []string{
		"turboflux-vet:",
		"findings (2 errors, 0 warnings)",
		"channel-discipline",
		"hotpath-alloc",
	} {
		if !strings.Contains(summary, want) {
			t.Errorf("summary missing %q:\n%s", want, summary)
		}
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Errorf("exit %d on unknown flag, want 2", code)
	}
}

func TestMissingDirExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-C", filepath.Join("..", "..", "no-such-dir")}, &out, &errOut); code != 2 {
		t.Errorf("exit %d on missing directory, want 2", code)
	}
	if errOut.String() == "" {
		t.Error("missing directory produced no stderr diagnostics")
	}
}
