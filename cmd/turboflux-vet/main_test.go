package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// fixture returns the path of one analyzer fixture module.
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "analysis", "analyzers", "testdata", "src", name)
}

func TestCleanTreeExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-C", fixture("clean"), "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d on clean fixture, want 0; stderr: %s", code, errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean fixture printed findings: %q", out.String())
	}
}

func TestFindingsExitOne(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-C", fixture("oracle"), "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on oracle fixture, want 1; stderr: %s", code, errOut.String())
	}
	want := "internal/core/engine.go:7: [oracle-isolation]"
	if !strings.Contains(out.String(), want) {
		t.Errorf("output missing %q:\n%s", want, out.String())
	}
}

func TestJSONShape(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "-C", fixture("encap"), "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on encap fixture, want 1; stderr: %s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Count != 5 || len(rep.Findings) != 5 {
		t.Fatalf("encap fixture: count=%d findings=%d, want 5/5", rep.Count, len(rep.Findings))
	}
	f := rep.Findings[0]
	if f.Analyzer != "dcg-encapsulation" || f.File != "internal/core/engine.go" || f.Line != 10 || f.Col == 0 || f.Message == "" {
		t.Errorf("first finding malformed: %+v", f)
	}
}

// TestAnnotationSuppression checks end to end that //tf: directives silence
// the analyzers: the hotpath fixture contains both flagged and suppressed
// allocation sites, and only the flagged ones must surface.
func TestAnnotationSuppression(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-json", "-C", fixture("hotpath"), "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on hotpath fixture, want 1; stderr: %s", code, errOut.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	entryPoint := false
	for _, f := range rep.Findings {
		if f.Line == 49 {
			t.Errorf("//tf:alloc-ok site was still reported: %+v", f)
		}
		if f.Line == 54 {
			t.Errorf("unannotated (cold) function was reported: %+v", f)
		}
		if strings.Contains(f.Message, "ApplyBatch") {
			entryPoint = true
		}
	}
	if !entryPoint {
		t.Error("implicit ApplyBatch entry point produced no finding")
	}
	if len(rep.Findings) != 4 {
		t.Errorf("hotpath fixture reported %d findings, want 4: %+v", len(rep.Findings), rep.Findings)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Errorf("exit %d on unknown flag, want 2", code)
	}
}

func TestMissingDirExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-C", filepath.Join("..", "..", "no-such-dir")}, &out, &errOut); code != 2 {
		t.Errorf("exit %d on missing directory, want 2", code)
	}
	if errOut.String() == "" {
		t.Error("missing directory produced no stderr diagnostics")
	}
}
